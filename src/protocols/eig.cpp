#include "protocols/eig.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "crypto/siphash.h"
#include "protocols/common.h"

namespace ba::protocols {
namespace {

using Label = std::vector<ProcessId>;

Value label_to_value(const Label& label) {
  ValueVec v;
  v.reserve(label.size());
  for (ProcessId p : label) v.emplace_back(static_cast<std::int64_t>(p));
  return Value{std::move(v)};
}

std::optional<Label> label_from_value(const Value& v, std::uint32_t n) {
  if (!v.is_vec()) return std::nullopt;
  Label label;
  label.reserve(v.as_vec().size());
  for (const Value& e : v.as_vec()) {
    if (!e.is_int() || e.as_int() < 0 ||
        e.as_int() >= static_cast<std::int64_t>(n)) {
      return std::nullopt;
    }
    label.push_back(static_cast<ProcessId>(e.as_int()));
  }
  return label;
}

bool label_contains(const Label& label, ProcessId p) {
  return std::find(label.begin(), label.end(), p) != label.end();
}

/// The strong-consensus fold shared by the arena and reference variants:
/// most frequent IC component, ties broken by value order (the first
/// maximum in ascending Value order wins).
Value strong_majority_fold(const Value& ic_vector) {
  std::map<Value, std::uint32_t> votes;
  for (const Value& v : ic_vector.as_vec()) ++votes[v];
  Value best = Value::null();
  std::uint32_t best_count = 0;
  for (const auto& [v, count] : votes) {
    if (count > best_count) {
      best = v;
      best_count = count;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// Reference implementation (the seed encoding): the IG tree as a std::map
// from heap-allocated label vectors to values. Kept verbatim as the
// behavioural oracle for the arena encoding (decisions and traces must stay
// byte-identical — tests/protocols/eig_arena_golden_test.cpp) and as the
// fallback for (n, t) outside eig_paths::layout_fits.
// ---------------------------------------------------------------------------

class EigReferenceProcess : public DecidingProcess {
 public:
  explicit EigReferenceProcess(const ProcessContext& ctx)
      : params_(ctx.params), self_(ctx.self), proposal_(ctx.proposal) {
    tree_[Label{}] = proposal_;
  }

  Outbox outbox_for_round(Round r) override {
    if (r > params_.t + 1) return {};
    // Send every level-(r-1) node not containing self.
    ValueVec reports;
    for (const auto& [label, value] : tree_) {
      if (label.size() != r - 1) continue;
      if (label_contains(label, self_)) continue;
      reports.push_back(
          Value{ValueVec{label_to_value(label), value}});
    }
    if (reports.empty() && r > 1) return {};
    Value payload = tagged("eig", std::move(reports));
    Outbox out;
    for (ProcessId p = 0; p < params_.n; ++p) {
      if (p != self_) out.push_back(Outgoing{p, payload});
    }
    return out;
  }

  void deliver(Round r, const Inbox& inbox) override {
    if (r > params_.t + 1) return;
    // Self-delivery: the runtime carries no self-messages, so a process
    // stores the reports it broadcast this round directly (every label it
    // sent gains the child label·self). Without this, a node's own honest
    // testimony would be missing from its majority votes.
    std::vector<std::pair<Label, Value>> own;
    for (const auto& [label, value] : tree_) {
      if (label.size() == r - 1 && !label_contains(label, self_)) {
        Label child = label;
        child.push_back(self_);
        own.emplace_back(std::move(child), value);
      }
    }
    for (auto& [child, value] : own) {
      tree_.emplace(std::move(child), value);
    }
    for (const Message& m : inbox) {
      if (!has_tag(m.payload, "eig")) continue;
      const ValueVec& reports = m.payload.as_vec();
      for (std::size_t i = 1; i < reports.size(); ++i) {
        const Value& rep = reports[i];
        if (!rep.is_vec() || rep.as_vec().size() != 2) continue;
        auto label = label_from_value(rep.as_vec()[0], params_.n);
        if (!label || label->size() != r - 1) continue;
        if (label_contains(*label, m.sender)) continue;
        Label child = *label;
        child.push_back(m.sender);
        tree_.emplace(std::move(child), rep.as_vec()[1]);  // first report wins
      }
    }
    if (r == params_.t + 1) {
      ValueVec vec;
      vec.reserve(params_.n);
      for (ProcessId j = 0; j < params_.n; ++j) {
        vec.push_back(resolve(Label{j}));
      }
      decide(finish(Value{std::move(vec)}));
    }
  }

 protected:
  /// Hook for derived protocols (strong consensus) to post-process the IC
  /// vector.
  [[nodiscard]] virtual Value finish(Value ic_vector) const {
    return ic_vector;
  }

  SystemParams params_;

 private:
  [[nodiscard]] Value stored(const Label& label) const {
    auto it = tree_.find(label);
    return it == tree_.end() ? Value::null() : it->second;
  }

  /// Bottom-up resolution: a leaf resolves to its stored value; an internal
  /// node resolves to the strict majority of its children, or null.
  [[nodiscard]] Value resolve(const Label& label) const {
    if (label.size() == params_.t + 1) return stored(label);
    std::map<Value, std::uint32_t> votes;
    std::uint32_t children = 0;
    for (ProcessId j = 0; j < params_.n; ++j) {
      if (label_contains(label, j)) continue;
      Label child = label;
      child.push_back(j);
      ++children;
      ++votes[resolve(child)];
    }
    for (const auto& [v, count] : votes) {
      if (2 * count > children) return v;
    }
    return Value::null();
  }

  ProcessId self_;
  Value proposal_;
  std::map<Label, Value> tree_;
};

class EigReferenceStrongProcess final : public EigReferenceProcess {
 public:
  using EigReferenceProcess::EigReferenceProcess;

 protected:
  [[nodiscard]] Value finish(Value ic_vector) const override {
    return strong_majority_fold(ic_vector);
  }
};

// ---------------------------------------------------------------------------
// Arena implementation.
//
// Levels 1..t are dense value-id arrays indexed by path id; values are
// interned once per process. The leaf level t+1 (the O(n^{t+1}) wall) is
// never materialized: each accepted leaf report marks one bit in a dense
// presence bitmap (first report wins, exactly the seed's map::emplace) and
// folds its value into a per-parent vote tally, so deciding is a linear
// sweep instead of a recursive walk over heap labels.
//
// Wire payloads keep the seed encoding. Report Values are built through a
// factory-shared ReportCache keyed by (level, path id, value) and hashed by
// an *incremental* SipHash path digest (crypto::SipHasher): the walker
// extends a parent prefix digest by one digit per child instead of
// re-hashing whole paths. Because equal (label, value) reports are shared
// across every sender that relays them, a fault-free round's payload set
// costs one allocation per distinct report instead of one per (sender ×
// report) — the difference between ~2 GB and tens of MB at n = 64.
// ---------------------------------------------------------------------------

constexpr std::uint32_t kAbsentId = 0xffffffffu;
constexpr std::uint32_t kNullId = 0;  // values_[0] is always Value::null()

/// Fixed key for path digests (only used as a hash; equality is on ids).
constexpr crypto::SipKey kPathKey{0x6569672d70617468ULL,  // "eig-path"
                                  0x2d6172656e613a31ULL};

/// Vote tally for one level-t parent: inline slots for the two most common
/// vote values (fault-free rounds never need more: the honest value and
/// null), spilling to a side map for adversarial mixes.
struct Tally {
  std::uint32_t a_id{kAbsentId};
  std::uint32_t b_id{kAbsentId};
  std::uint16_t a_cnt{0};
  std::uint16_t b_cnt{0};
};

/// Factory-shared, thread-safe cache of report Values keyed by
/// (level, path id, value). Sharing across the processes of a run means
/// every relay of the same (label, value) report reuses one immutable
/// payload allocation (COW Values make that semantically invisible), which
/// is what keeps n = 128 runs inside a laptop's memory instead of O(n) times
/// the distinct-report footprint. The map is never iterated, so it cannot
/// introduce ordering nondeterminism.
class ReportCache {
 public:
  ReportCache() { slots_.resize(1u << 12); }

  Value get(std::uint32_t level, std::uint64_t id, const Value& value,
            std::span<const ProcessId> digits, std::uint64_t path_digest) {
    std::uint64_t h = path_digest ^ (value.hash() * 0x9e3779b97f4a7c15ULL);
    if (h == 0) h = 0x517cc1b727220a95ULL;  // 0 marks an empty slot
    {
      const std::lock_guard<std::mutex> lock(mu_);
      Entry* e = probe(h, level, id, value);
      if (e->hash != 0) return e->report;
    }
    ValueVec label_elems;
    label_elems.reserve(digits.size());
    for (ProcessId p : digits) {
      label_elems.emplace_back(static_cast<std::int64_t>(p));
    }
    Value report{ValueVec{Value{std::move(label_elems)}, value}};
    const std::lock_guard<std::mutex> lock(mu_);
    // Re-probe: the table may have grown (or the entry appeared) while the
    // report was being built outside the lock.
    Entry* e = probe(h, level, id, value);
    if (e->hash != 0) return e->report;
    if (used_ >= kMaxEntries) return report;  // full: hand out unshared
    e->hash = h;
    e->level = level;
    e->id = id;
    e->value = value;
    e->report = report;
    if (++used_ * 4 >= slots_.size() * 3) grow();
    return report;
  }

 private:
  // Open-addressed (the per-call cost is one cache line probe in the common
  // all-processes-after-the-first hit case, vs a node-based map's bucket
  // walk — this is the hottest sender-side call at large n). Hits and
  // misses build value-equal reports, so traces are identical either way.
  struct Entry {
    std::uint64_t hash{0};  // 0 = empty
    std::uint64_t id{0};
    std::uint32_t level{0};
    Value value;
    Value report;
  };

  static constexpr std::size_t kMaxEntries = 1u << 20;

  Entry* probe(std::uint64_t h, std::uint32_t level, std::uint64_t id,
               const Value& value) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(h) & mask;
    while (true) {
      Entry& e = slots_[i];
      if (e.hash == 0 ||
          (e.hash == h && e.level == level && e.id == id && e.value == value)) {
        return &e;
      }
      i = (i + 1) & mask;
    }
  }

  void grow() {
    std::vector<Entry> old = std::move(slots_);
    slots_.assign(old.size() * 2, Entry{});
    for (Entry& e : old) {
      if (e.hash == 0) continue;
      const std::size_t mask = slots_.size() - 1;
      std::size_t i = static_cast<std::size_t>(e.hash) & mask;
      while (slots_[i].hash != 0) i = (i + 1) & mask;
      slots_[i] = std::move(e);
    }
  }

  std::mutex mu_;
  std::vector<Entry> slots_;
  std::size_t used_{0};
};

/// Open-addressing intern table for kInt values (the overwhelmingly common
/// payload in practice): ~4 ns per hit vs ~25 ns for unordered_map, which
/// matters at 10^6+ leaf ingests per process.
class IntInterner {
 public:
  std::uint32_t* find_or_reserve(std::int64_t key) {
    if (used_ * 4 >= slots_.size() * 3) grow();
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(
                        static_cast<std::uint64_t>(key) *
                        0x9e3779b97f4a7c15ULL) &
                    mask;
    while (true) {
      Slot& s = slots_[i];
      if (!s.used) {
        s.used = true;
        s.key = key;
        s.id = kAbsentId;
        ++used_;
        return &s.id;
      }
      if (s.key == key) return &s.id;
      i = (i + 1) & mask;
    }
  }

 private:
  struct Slot {
    std::int64_t key{0};
    std::uint32_t id{kAbsentId};
    bool used{false};
  };

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.empty() ? 64 : old.size() * 2, Slot{});
    used_ = 0;
    const std::size_t mask = slots_.size() - 1;
    for (const Slot& s : old) {
      if (!s.used) continue;
      std::size_t i = static_cast<std::size_t>(
                          static_cast<std::uint64_t>(s.key) *
                          0x9e3779b97f4a7c15ULL) &
                      mask;
      while (slots_[i].used) i = (i + 1) & mask;
      slots_[i] = s;
      ++used_;
    }
  }

  std::vector<Slot> slots_{std::vector<Slot>(64)};
  std::size_t used_{0};
};

/// Per-deliver pointer-identity memo over the shared report allocations.
/// The ReportCache hands every relaying sender the *same* immutable Value
/// for an equal (label, value) report, so within one deliver call the same
/// ValueVec address recurs once per sender (~n times at the final round). An
/// entry caches the sender-independent parse — dense parent id, label
/// digits, this process's interned value id (kAbsentId = malformed) — and a
/// hit replays it with only the per-sender containment check, skipping the
/// label re-parse and value re-intern. Entries are generation-stamped per
/// deliver call: every payload in the inbox outlives the call, so a
/// recurring address is necessarily the same live object (no address-reuse
/// hazard), and a hit is behaviourally identical to re-parsing.
class ReportMemo {
 public:
  /// Labels longer than this bypass the memo. Two digits cover every level
  /// the big-n arenas can reach (layout_fits caps n^{t+1}, so t >= 3 only
  /// survives at small n where the payload volume is trivial), and keep an
  /// Entry at 24 bytes — the table is per process and n of them are live.
  static constexpr std::uint32_t kMaxDigits = 2;

  struct Entry {
    const void* key{nullptr};
    std::uint32_t gen{0};
    std::uint32_t parent_id{0};
    std::uint32_t vid{kAbsentId};
    std::array<std::uint16_t, kMaxDigits> digits{};
  };

  explicit ReportMemo(std::uint64_t expected_distinct) {
    std::uint64_t want = 1024;
    while (want < (1u << 16) && want < expected_distinct * 2) want *= 2;
    slots_.assign(static_cast<std::size_t>(want), Entry{});
    shift_ = 64 - static_cast<std::uint32_t>(std::countr_zero(want));
  }

  void begin_round() {
    ++gen_;
    if (gen_ == 0) {  // u32 wrap: flush stale stamps before reusing gen 0
      slots_.assign(slots_.size(), Entry{});
      gen_ = 1;
    }
    used_ = 0;
  }

  /// Probes for `key`. Returns (entry, true) on a hit; on a miss, claims a
  /// slot for the caller to fill and returns (entry, false), or
  /// (nullptr, false) when the table is saturated for this round (caller
  /// falls back to the plain parse).
  std::pair<Entry*, bool> lookup(const void* key) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = slot_index(key);
    while (true) {
      Entry& e = slots_[i];
      if (e.gen != gen_) {
        if (used_ * 4 >= slots_.size() * 3) return {nullptr, false};
        ++used_;
        e.gen = gen_;
        e.key = key;
        e.vid = kAbsentId;
        return {&e, false};
      }
      if (e.key == key) return {&e, true};
      i = (i + 1) & mask;
    }
  }

  /// Warms the home slot of a key about to be looked up — the probe is the
  /// one hash-scattered load on the ingest fast path (the bitmap and tally
  /// sweeps are near-sequential in dense-id order).
  void prefetch(const void* key) const {
    __builtin_prefetch(&slots_[slot_index(key)], 1, 1);
  }

 private:
  [[nodiscard]] std::size_t slot_index(const void* key) const {
    const auto p = reinterpret_cast<std::uintptr_t>(key);  // determinism: hash position only — a hit replays the exact parse a miss would redo
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(p) * 0x9e3779b97f4a7c15ULL) >> shift_);
  }

  std::vector<Entry> slots_;
  std::uint32_t shift_{54};
  std::uint32_t gen_{0};
  std::size_t used_{0};
};

class EigArenaProcess : public DecidingProcess {
 public:
  EigArenaProcess(const ProcessContext& ctx,
                  std::shared_ptr<ReportCache> cache)
      : params_(ctx.params),
        self_(ctx.self),
        proposal_(ctx.proposal),
        cache_(std::move(cache)),
        memo_(eig_paths::level_size(
            ctx.params.n,
            std::min(ctx.params.t == 0 ? 1u : ctx.params.t,
                     ReportMemo::kMaxDigits))) {
    const std::uint32_t n = params_.n;
    const std::uint32_t t = params_.t;
    values_.push_back(Value::null());
    proposal_id_ = intern(proposal_);
    stored_max_ = (t == 0) ? 1 : t;
    levels_.resize(stored_max_ + 1);
    for (std::uint32_t l = 1; l <= stored_max_; ++l) {
      levels_[l].assign(
          static_cast<std::size_t>(eig_paths::level_size(n, l)), kAbsentId);
    }
    if (t >= 1) {
      tallies_.assign(
          static_cast<std::size_t>(eig_paths::level_size(n, t)), Tally{});
      const std::uint64_t leaves = eig_paths::level_size(n, t + 1);
      leaf_seen_.assign(static_cast<std::size_t>((leaves + 63) / 64), 0);
    }
  }

  Outbox outbox_for_round(Round r) override {
    if (r > params_.t + 1) return {};
    ValueVec reports;
    walk_level(r - 1, [&](std::uint64_t id, std::uint32_t vid,
                          std::span<const ProcessId> digits,
                          const crypto::SipHasher& hasher) {
      reports.push_back(cache_->get(r - 1, id, values_[vid], digits,
                                    hasher.digest()));
    });
    if (reports.empty() && r > 1) return {};
    Value payload = tagged("eig", std::move(reports));
    Outbox out;
    for (ProcessId p = 0; p < params_.n; ++p) {
      if (p != self_) out.push_back(Outgoing{p, payload});
    }
    return out;
  }

  void deliver(Round r, const Inbox& inbox) override {
    if (r > params_.t + 1) return;
    // Self-delivery first (the seed's order): every level-(r-1) node this
    // process just broadcast gains the child label·self.
    walk_level(r - 1, [&](std::uint64_t id, std::uint32_t vid,
                          std::span<const ProcessId> /*digits*/,
                          const crypto::SipHasher& /*hasher*/) {
      ingest_id(id, r - 1, self_, vid);
    });
    const std::uint32_t n = params_.n;
    const std::uint32_t level = static_cast<std::uint32_t>(r) - 1;
    const bool use_memo = level <= ReportMemo::kMaxDigits;
    if (use_memo) memo_.begin_round();
    for (const Message& m : inbox) {
      if (!has_tag(m.payload, "eig")) continue;
      const ValueVec& reports = m.payload.as_vec();
      for (std::size_t i = 1; i < reports.size(); ++i) {
        const Value& rep = reports[i];
        if (!rep.is_vec()) continue;
        const ValueVec& rv = rep.as_vec();
        if (use_memo) {
          if (i + 2 < reports.size() && reports[i + 2].is_vec()) {
            memo_.prefetch(&reports[i + 2].as_vec());
          }
          auto [e, hit] = memo_.lookup(&rv);
          if (e != nullptr) {
            if (!hit) parse_report_into(*e, rv, level);
            if (e->vid == kAbsentId) continue;  // malformed for every sender
            if (digits_contain(*e, level, m.sender)) continue;
            ingest_id(e->parent_id, level, m.sender, e->vid);
            continue;
          }
          // Saturated table: fall through to the plain per-sender parse.
        }
        if (rv.size() != 2) continue;
        // Fused label parse: range-check each digit, reject labels
        // containing the sender, and accumulate the dense path id in one
        // pass (the seed's label_from_value + size + contains checks).
        if (!rv[0].is_vec()) continue;
        const ValueVec& digits = rv[0].as_vec();
        if (digits.size() != level) continue;
        std::uint64_t id = 0;
        bool ok = true;
        for (const Value& e : digits) {
          if (!e.is_int()) {
            ok = false;
            break;
          }
          const std::int64_t x = e.as_int();
          if (x < 0 || x >= static_cast<std::int64_t>(n) ||
              x == static_cast<std::int64_t>(m.sender)) {
            ok = false;
            break;
          }
          id = id * n + static_cast<std::uint64_t>(x);
        }
        if (!ok) continue;
        ingest_value(id, level, m.sender, rv[1]);
      }
    }
    if (r == params_.t + 1) {
      decide(finish(make_ic_vector()));
    }
  }

 protected:
  /// Hook for derived protocols (strong consensus) to post-process the IC
  /// vector.
  [[nodiscard]] virtual Value finish(Value ic_vector) const {
    return ic_vector;
  }

  SystemParams params_;

 private:
  /// Stores a freshly heard child node label·last (dense id arithmetic; the
  /// first report wins, like the seed's map::emplace). Interior children go
  /// to the stored level arrays; leaves mark presence and vote.
  void ingest_id(std::uint64_t parent_id, std::uint32_t parent_level,
                 ProcessId last, std::uint32_t value_id) {
    const std::uint64_t cid =
        eig_paths::child_id(parent_id, params_.n, last);
    const std::uint32_t child_level = parent_level + 1;
    if (child_level <= stored_max_) {
      std::uint32_t& slot = levels_[child_level][static_cast<std::size_t>(cid)];
      if (slot == kAbsentId) slot = value_id;
      return;
    }
    if (leaf_test_and_set(cid)) return;
    vote(parent_id, value_id);
  }

  /// Sender-independent half of the report parse, cached in a memo entry:
  /// shape and digit-range checks, dense parent-id accumulation, eager value
  /// intern (interning a value whose report is later rejected per-sender is
  /// unobservable — ids are internal and deduplicated). Sender containment
  /// is re-checked per delivering sender against the cached digits.
  void parse_report_into(ReportMemo::Entry& e, const ValueVec& rv,
                         std::uint32_t level) {
    e.vid = kAbsentId;
    if (rv.size() != 2) return;
    if (!rv[0].is_vec()) return;
    const ValueVec& digits = rv[0].as_vec();
    if (digits.size() != level) return;
    const std::uint32_t n = params_.n;
    std::uint64_t id = 0;
    for (std::uint32_t d = 0; d < level; ++d) {
      const Value& ev = digits[d];
      if (!ev.is_int()) return;
      const std::int64_t x = ev.as_int();
      if (x < 0 || x >= static_cast<std::int64_t>(n)) return;
      e.digits[d] = static_cast<std::uint16_t>(x);
      id = id * n + static_cast<std::uint64_t>(x);
    }
    e.parent_id = static_cast<std::uint32_t>(id);
    e.vid = intern(rv[1]);
  }

  static bool digits_contain(const ReportMemo::Entry& e, std::uint32_t level,
                             ProcessId sender) {
    for (std::uint32_t d = 0; d < level; ++d) {
      if (e.digits[d] == sender) return true;
    }
    return false;
  }

  /// Same, interning the value only when the child is actually fresh.
  void ingest_value(std::uint64_t parent_id, std::uint32_t parent_level,
                    ProcessId last, const Value& v) {
    const std::uint64_t cid =
        eig_paths::child_id(parent_id, params_.n, last);
    const std::uint32_t child_level = parent_level + 1;
    if (child_level <= stored_max_) {
      std::uint32_t& slot = levels_[child_level][static_cast<std::size_t>(cid)];
      if (slot == kAbsentId) slot = intern(v);
      return;
    }
    if (leaf_test_and_set(cid)) return;
    vote(parent_id, intern(v));
  }

  bool leaf_test_and_set(std::uint64_t cid) {
    std::uint64_t& w = leaf_seen_[static_cast<std::size_t>(cid >> 6)];
    const std::uint64_t bit = 1ull << (cid & 63);
    if ((w & bit) != 0) return true;
    w |= bit;
    return false;
  }

  void vote(std::uint64_t parent_id, std::uint32_t vid) {
    Tally& ta = tallies_[static_cast<std::size_t>(parent_id)];
    // Fault-free rounds take this branch almost always (every leaf under a
    // parent reports the same honest value); everything else is cold.
    if (ta.a_id == vid) {
      ++ta.a_cnt;
      return;
    }
    vote_slow(ta, parent_id, vid);
  }

  void vote_slow(Tally& ta, std::uint64_t parent_id, std::uint32_t vid) {
    if (ta.a_id == kAbsentId) {
      ta.a_id = vid;
      ta.a_cnt = 1;
      return;
    }
    if (ta.b_id == vid) {
      ++ta.b_cnt;
      return;
    }
    if (ta.b_id == kAbsentId) {
      ta.b_id = vid;
      ta.b_cnt = 1;
      return;
    }
    ++overflow_[parent_id][vid];
  }

  std::uint32_t intern(const Value& v) {
    if (v.is_null()) return kNullId;
    if (v.is_int()) {
      std::uint32_t* slot = int_interner_.find_or_reserve(v.as_int());
      if (*slot == kAbsentId) {
        *slot = static_cast<std::uint32_t>(values_.size());
        values_.push_back(v);
      }
      return *slot;
    }
    auto [it, inserted] =
        intern_map_.try_emplace(v, static_cast<std::uint32_t>(values_.size()));
    if (inserted) values_.push_back(v);
    return it->second;
  }

  /// Visits every stored level-L node whose label avoids self, in ascending
  /// dense-id order (== the seed map's lexicographic label order). The
  /// callback receives the node's id, interned value, digits, and an
  /// incremental SipHash over the digit path — each child's digest extends a
  /// snapshot of its parent's hasher by one u32 instead of re-hashing the
  /// whole path.
  template <typename F>
  void walk_level(std::uint32_t level, F&& f) {
    crypto::SipHasher root(kPathKey);
    if (level == 0) {
      f(eig_paths::kRootId, proposal_id_, std::span<const ProcessId>{}, root);
      return;
    }
    if (level > stored_max_) return;
    const std::uint32_t n = params_.n;
    walk_digits_.resize(level);
    walk_hashers_.assign(level + 1, root);
    const std::vector<std::uint32_t>& slots = levels_[level];
    // Iterative DFS over digit prefixes; subtrees rooted at digit == self
    // are pruned whole (every descendant label contains self).
    auto descend = [&](std::uint32_t depth, std::uint64_t id,
                       auto&& self_fn) -> void {
      for (ProcessId j = 0; j < n; ++j) {
        if (j == self_) continue;
        const std::uint64_t cid = id * n + j;
        if (depth + 1 == level) {
          const std::uint32_t vid = slots[static_cast<std::size_t>(cid)];
          if (vid == kAbsentId) continue;
          walk_digits_[depth] = j;
          crypto::SipHasher h = walk_hashers_[depth];
          h.absorb_u32(j);
          f(cid, vid, std::span<const ProcessId>(walk_digits_), h);
        } else {
          walk_digits_[depth] = j;
          walk_hashers_[depth + 1] = walk_hashers_[depth];
          walk_hashers_[depth + 1].absorb_u32(j);
          self_fn(depth + 1, cid, self_fn);
        }
      }
    };
    descend(0, eig_paths::kRootId, descend);
  }

  [[nodiscard]] Value make_ic_vector() {
    const std::uint32_t n = params_.n;
    ValueVec vec;
    vec.reserve(n);
    if (params_.t == 0) {
      for (ProcessId j = 0; j < n; ++j) {
        const std::uint32_t vid = levels_[1][j];
        vec.push_back(vid == kAbsentId ? Value::null() : values_[vid]);
      }
      return Value{std::move(vec)};
    }
    in_label_.assign(n, 0);
    // Pre-size the per-level scratch: resolve_node holds a reference into
    // this vector across its recursion, so it must never reallocate
    // mid-resolve (levels 1..t-1 are the interior levels that tally).
    if (resolve_counts_buf_.size() < params_.t) {
      resolve_counts_buf_.resize(params_.t);
    }
    for (ProcessId j = 0; j < n; ++j) {
      in_label_[j] = 1;
      vec.push_back(values_[resolve_node(j, 1)]);
      in_label_[j] = 0;
    }
    return Value{std::move(vec)};
  }

  /// Resolves the level-`level` node `id` (digits marked in in_label_):
  /// level t resolves from its leaf tally, interior nodes from the strict
  /// majority of their children (null when none) — the seed's recursive
  /// resolve, as id arithmetic.
  [[nodiscard]] std::uint32_t resolve_node(std::uint64_t id,
                                           std::uint32_t level) {
    if (level == params_.t) return resolve_from_tally(id);
    const std::uint32_t n = params_.n;
    std::uint32_t children = 0;
    // Sized by make_ic_vector before the recursion starts — growing it here
    // would invalidate the parent frames' references into it.
    std::vector<std::pair<std::uint32_t, std::uint32_t>>& counts =
        resolve_counts_buf_[level];
    counts.clear();
    for (ProcessId j = 0; j < n; ++j) {
      if (in_label_[j] != 0) continue;
      ++children;
      in_label_[j] = 1;
      const std::uint32_t v =
          resolve_node(eig_paths::child_id(id, n, j), level + 1);
      in_label_[j] = 0;
      bool found = false;
      for (auto& [cv, cc] : counts) {
        if (cv == v) {
          ++cc;
          found = true;
          break;
        }
      }
      if (!found) counts.emplace_back(v, 1);
    }
    for (const auto& [cv, cc] : counts) {
      if (2 * cc > children) return cv;
    }
    return kNullId;
  }

  [[nodiscard]] std::uint32_t resolve_from_tally(std::uint64_t id) {
    const Tally& ta = tallies_[static_cast<std::size_t>(id)];
    // A resolved level-t label has t distinct digits, so it has exactly
    // n - t children; absent leaves vote null. Only a non-null strict
    // majority needs detecting: a null majority and no majority both
    // resolve to null, so null votes never have to be counted.
    const std::uint32_t children = params_.n - params_.t;
    std::uint32_t best = kNullId;
    auto consider = [&](std::uint32_t vid, std::uint32_t cnt) {
      if (vid != kNullId && 2 * cnt > children) best = vid;
    };
    if (ta.a_id != kAbsentId) consider(ta.a_id, ta.a_cnt);
    if (ta.b_id != kAbsentId) consider(ta.b_id, ta.b_cnt);
    auto it = overflow_.find(id);
    if (it != overflow_.end()) {
      for (const auto& [vid, cnt] : it->second) consider(vid, cnt);
    }
    return best;
  }

  ProcessId self_;
  Value proposal_;
  std::shared_ptr<ReportCache> cache_;
  ReportMemo memo_;

  std::uint32_t stored_max_{1};
  std::uint32_t proposal_id_{kNullId};
  std::vector<std::vector<std::uint32_t>> levels_;  // levels_[l][id] = value id
  std::vector<Tally> tallies_;                      // level-t parents
  std::vector<std::uint64_t> leaf_seen_;            // level-(t+1) presence bits
  // Rare >2-distinct-value tallies; the iterated inner map is ordered.
  std::unordered_map<std::uint64_t,  // determinism: keyed access only, never iterated
                     std::map<std::uint32_t, std::uint32_t>>
      overflow_;

  std::vector<Value> values_;  // interned values; [0] = null
  // Ids are assigned in first-seen order, fixed by the deterministic
  // ingest order.
  std::unordered_map<Value, std::uint32_t>  // determinism: lookup-only, never iterated
      intern_map_;
  IntInterner int_interner_;

  // Scratch reused across walks/decides (no steady-state allocation).
  std::vector<ProcessId> walk_digits_;
  std::vector<crypto::SipHasher> walk_hashers_;
  std::vector<std::uint8_t> in_label_;
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
      resolve_counts_buf_;  // per recursion depth, reused
};

class EigArenaStrongProcess final : public EigArenaProcess {
 public:
  using EigArenaProcess::EigArenaProcess;

 protected:
  [[nodiscard]] Value finish(Value ic_vector) const override {
    return strong_majority_fold(ic_vector);
  }
};

}  // namespace

namespace eig_paths {

std::uint64_t level_size(std::uint32_t n, std::uint32_t level) {
  std::uint64_t size = 1;
  for (std::uint32_t l = 0; l < level; ++l) {
    if (n != 0 && size > UINT64_MAX / n) return UINT64_MAX;
    size *= n;
  }
  return size;
}

void decode_path(std::uint64_t id, std::uint32_t n, std::uint32_t level,
                 std::vector<ProcessId>& out) {
  out.assign(level, 0);
  for (std::uint32_t l = level; l > 0; --l) {
    out[l - 1] = static_cast<ProcessId>(id % n);
    id /= n;
  }
}

bool path_contains(std::uint64_t id, std::uint32_t n, std::uint32_t level,
                   ProcessId p) {
  for (std::uint32_t l = 0; l < level; ++l) {
    if (static_cast<ProcessId>(id % n) == p) return true;
    id /= n;
  }
  return false;
}

bool layout_fits(std::uint32_t n, std::uint32_t t) {
  if (n == 0 || n > 0xffffu) return false;
  // n^t parent slots carry a 16-byte tally each; n^{t+1} leaf slots carry
  // one presence bit each. The caps keep a single process's arena in the
  // tens of MB worst case; anything bigger was unusable under the seed
  // encoding too and falls back to it.
  constexpr std::uint64_t kMaxParentSlots = 1ull << 22;
  constexpr std::uint64_t kMaxLeafSlots = 1ull << 27;
  return level_size(n, t) <= kMaxParentSlots &&
         level_size(n, t + 1) <= kMaxLeafSlots;
}

}  // namespace eig_paths

ProtocolFactory eig_interactive_consistency() {
  auto cache = std::make_shared<ReportCache>();
  return [cache](const ProcessContext& ctx) -> std::unique_ptr<Process> {
    if (!eig_paths::layout_fits(ctx.params.n, ctx.params.t)) {
      return std::make_unique<EigReferenceProcess>(ctx);
    }
    return std::make_unique<EigArenaProcess>(ctx, cache);
  };
}

ProtocolFactory eig_strong_consensus() {
  auto cache = std::make_shared<ReportCache>();
  return [cache](const ProcessContext& ctx) -> std::unique_ptr<Process> {
    if (!eig_paths::layout_fits(ctx.params.n, ctx.params.t)) {
      return std::make_unique<EigReferenceStrongProcess>(ctx);
    }
    return std::make_unique<EigArenaStrongProcess>(ctx, cache);
  };
}

ProtocolFactory eig_reference_interactive_consistency() {
  return [](const ProcessContext& ctx) {
    return std::make_unique<EigReferenceProcess>(ctx);
  };
}

ProtocolFactory eig_reference_strong_consensus() {
  return [](const ProcessContext& ctx) {
    return std::make_unique<EigReferenceStrongProcess>(ctx);
  };
}

statics::CommSpec eig_ic_comm_spec() {
  using statics::PayloadClass;
  using statics::Poly;
  const Poly n = Poly::n();
  const Poly t = Poly::t();
  statics::CommSpec spec;
  spec.protocol = "eig-ic";
  spec.problem = "interactive-consistency";
  spec.resilience = "n > 3t";
  spec.rounds = t + 1;
  spec.blocks = {
      {.label = "EIG levels 1..t+1",
       .rounds = t + 1,
       .patterns = {{.label = "every process multicasts its level report",
                     .senders = n,
                     .receivers_per_sender = n - 1,
                     .payload = PayloadClass::kEigReport}}}};
  spec.notes =
      "(t+1) n (n-1) messages, but the level-r report carries O(n^r) tree "
      "entries: the byte bound is superpolynomial by construction";
  return spec;
}

statics::CommSpec eig_strong_comm_spec() {
  statics::CommSpec spec = eig_ic_comm_spec();
  spec.protocol = "eig-strong";
  spec.problem = "strong-consensus";
  spec.notes =
      "EIG interactive consistency plus a local majority fold: the fold "
      "sends nothing, so the IC spec carries over unchanged";
  return spec;
}

}  // namespace ba::protocols
