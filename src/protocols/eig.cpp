#include "protocols/eig.h"

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "protocols/common.h"

namespace ba::protocols {
namespace {

using Label = std::vector<ProcessId>;

Value label_to_value(const Label& label) {
  ValueVec v;
  v.reserve(label.size());
  for (ProcessId p : label) v.emplace_back(static_cast<std::int64_t>(p));
  return Value{std::move(v)};
}

std::optional<Label> label_from_value(const Value& v, std::uint32_t n) {
  if (!v.is_vec()) return std::nullopt;
  Label label;
  label.reserve(v.as_vec().size());
  for (const Value& e : v.as_vec()) {
    if (!e.is_int() || e.as_int() < 0 ||
        e.as_int() >= static_cast<std::int64_t>(n)) {
      return std::nullopt;
    }
    label.push_back(static_cast<ProcessId>(e.as_int()));
  }
  return label;
}

bool label_contains(const Label& label, ProcessId p) {
  return std::find(label.begin(), label.end(), p) != label.end();
}

class EigProcess : public DecidingProcess {
 public:
  explicit EigProcess(const ProcessContext& ctx)
      : params_(ctx.params), self_(ctx.self), proposal_(ctx.proposal) {
    tree_[Label{}] = proposal_;
  }

  Outbox outbox_for_round(Round r) override {
    if (r > params_.t + 1) return {};
    // Send every level-(r-1) node not containing self.
    ValueVec reports;
    for (const auto& [label, value] : tree_) {
      if (label.size() != r - 1) continue;
      if (label_contains(label, self_)) continue;
      reports.push_back(
          Value{ValueVec{label_to_value(label), value}});
    }
    if (reports.empty() && r > 1) return {};
    Value payload = tagged("eig", std::move(reports));
    Outbox out;
    for (ProcessId p = 0; p < params_.n; ++p) {
      if (p != self_) out.push_back(Outgoing{p, payload});
    }
    return out;
  }

  void deliver(Round r, const Inbox& inbox) override {
    if (r > params_.t + 1) return;
    // Self-delivery: the runtime carries no self-messages, so a process
    // stores the reports it broadcast this round directly (every label it
    // sent gains the child label·self). Without this, a node's own honest
    // testimony would be missing from its majority votes.
    std::vector<std::pair<Label, Value>> own;
    for (const auto& [label, value] : tree_) {
      if (label.size() == r - 1 && !label_contains(label, self_)) {
        Label child = label;
        child.push_back(self_);
        own.emplace_back(std::move(child), value);
      }
    }
    for (auto& [child, value] : own) {
      tree_.emplace(std::move(child), value);
    }
    for (const Message& m : inbox) {
      if (!has_tag(m.payload, "eig")) continue;
      const ValueVec& reports = m.payload.as_vec();
      for (std::size_t i = 1; i < reports.size(); ++i) {
        const Value& rep = reports[i];
        if (!rep.is_vec() || rep.as_vec().size() != 2) continue;
        auto label = label_from_value(rep.as_vec()[0], params_.n);
        if (!label || label->size() != r - 1) continue;
        if (label_contains(*label, m.sender)) continue;
        Label child = *label;
        child.push_back(m.sender);
        tree_.emplace(std::move(child), rep.as_vec()[1]);  // first report wins
      }
    }
    if (r == params_.t + 1) {
      ValueVec vec;
      vec.reserve(params_.n);
      for (ProcessId j = 0; j < params_.n; ++j) {
        vec.push_back(resolve(Label{j}));
      }
      decide(finish(Value{std::move(vec)}));
    }
  }

 protected:
  /// Hook for derived protocols (strong consensus) to post-process the IC
  /// vector.
  [[nodiscard]] virtual Value finish(Value ic_vector) const {
    return ic_vector;
  }

  SystemParams params_;

 private:
  [[nodiscard]] Value stored(const Label& label) const {
    auto it = tree_.find(label);
    return it == tree_.end() ? Value::null() : it->second;
  }

  /// Bottom-up resolution: a leaf resolves to its stored value; an internal
  /// node resolves to the strict majority of its children, or null.
  [[nodiscard]] Value resolve(const Label& label) const {
    if (label.size() == params_.t + 1) return stored(label);
    std::map<Value, std::uint32_t> votes;
    std::uint32_t children = 0;
    for (ProcessId j = 0; j < params_.n; ++j) {
      if (label_contains(label, j)) continue;
      Label child = label;
      child.push_back(j);
      ++children;
      ++votes[resolve(child)];
    }
    for (const auto& [v, count] : votes) {
      if (2 * count > children) return v;
    }
    return Value::null();
  }

  ProcessId self_;
  Value proposal_;
  std::map<Label, Value> tree_;
};

class EigStrongProcess final : public EigProcess {
 public:
  using EigProcess::EigProcess;

 protected:
  [[nodiscard]] Value finish(Value ic_vector) const override {
    std::map<Value, std::uint32_t> votes;
    for (const Value& v : ic_vector.as_vec()) ++votes[v];
    Value best = Value::null();
    std::uint32_t best_count = 0;
    for (const auto& [v, count] : votes) {
      if (count > best_count) {
        best = v;
        best_count = count;
      }
    }
    return best;
  }
};

}  // namespace

ProtocolFactory eig_interactive_consistency() {
  return [](const ProcessContext& ctx) {
    return std::make_unique<EigProcess>(ctx);
  };
}

ProtocolFactory eig_strong_consensus() {
  return [](const ProcessContext& ctx) {
    return std::make_unique<EigStrongProcess>(ctx);
  };
}

statics::CommSpec eig_ic_comm_spec() {
  using statics::PayloadClass;
  using statics::Poly;
  const Poly n = Poly::n();
  const Poly t = Poly::t();
  statics::CommSpec spec;
  spec.protocol = "eig-ic";
  spec.problem = "interactive-consistency";
  spec.resilience = "n > 3t";
  spec.rounds = t + 1;
  spec.blocks = {
      {.label = "EIG levels 1..t+1",
       .rounds = t + 1,
       .patterns = {{.label = "every process multicasts its level report",
                     .senders = n,
                     .receivers_per_sender = n - 1,
                     .payload = PayloadClass::kEigReport}}}};
  spec.notes =
      "(t+1) n (n-1) messages, but the level-r report carries O(n^r) tree "
      "entries: the byte bound is superpolynomial by construction";
  return spec;
}

statics::CommSpec eig_strong_comm_spec() {
  statics::CommSpec spec = eig_ic_comm_spec();
  spec.protocol = "eig-strong";
  spec.problem = "strong-consensus";
  spec.notes =
      "EIG interactive consistency plus a local majority fold: the fold "
      "sends nothing, so the IC spec carries over unchanged";
  return spec;
}

}  // namespace ba::protocols
