#pragma once

// Binary crusader broadcast [13, Abraham-Stern]: a relaxation of Byzantine
// broadcast in which correct processes may decide the sender's bit or the
// special value bottom(), with the guarantees:
//   * Crusader Agreement: no two correct processes decide different bits
//     (one deciding a bit and another bottom() is allowed);
//   * Sender Validity: if the sender is correct, every correct process
//     decides its bit.
//
// The paper's related work highlights that even this weaker primitive has a
// quadratic message lower bound in its own right [13]. The 2-round echo
// protocol implemented here is the classic unauthenticated construction for
// n > 3t:
//   round 1: the sender multicasts its bit;
//   round 2: everyone echoes the bit it received;
//   decide b if >= n - t echoes of b were observed (own echo included),
//   bottom() otherwise.
// Two correct processes deciding different bits would require n - 2t correct
// echoers per bit, impossible when n > 3t.

#include "runtime/process.h"

#include "statics/comm_spec.h"

namespace ba::protocols {

ProtocolFactory crusader_broadcast_bit(ProcessId sender);

inline Round crusader_rounds() { return 2; }
inline std::uint32_t crusader_min_n(std::uint32_t t) { return 3 * t + 1; }

/// Static communication declaration: (n-1) + n(n-1) bit messages, 2 rounds.
statics::CommSpec crusader_comm_spec();

}  // namespace ba::protocols
