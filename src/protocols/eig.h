#pragma once

// Exponential Information Gathering (EIG) interactive consistency
// [78, 55, 82]: unauthenticated, n > 3t, t + 1 rounds, messages of size
// O(n^t) — the classic proof-of-solvability construction, practical for small
// t only (the library's phase-king-based protocols cover larger systems).
//
// Every process decides the same vector of n values; the component of every
// correct process equals its proposal (IC-Validity).
//
// Representation: the information-gathering tree is a flat, level-indexed
// arena. A level-L node is addressed by its dense path id
// id(p1..pL) = ((p1·n + p2)·n + p3)·… (see `eig_paths` below), values are
// interned once and stored as 32-bit ids in one contiguous buffer per level,
// and the final level (the leaves, O(n^{t+1}) of them) is never materialized:
// leaf reports fold directly into per-parent vote tallies, so the
// resolve/decide pass is a linear sweep per level instead of pointer-chasing
// a map of heap-allocated path vectors. Wire payloads are unchanged — the
// arena converts to the exact `Value` report encoding of the seed
// implementation at the serde boundary, proven byte-identical by
// tests/protocols/eig_arena_golden_test.cpp against the retained reference
// implementation (`eig_reference_*` below).

#include <cstdint>
#include <vector>

#include "runtime/process.h"

#include "statics/comm_spec.h"

namespace ba::protocols {

/// Interactive consistency over arbitrary `Value` proposals. Missing or
/// malformed reports resolve to Value::null().
ProtocolFactory eig_interactive_consistency();

/// Strong consensus derived from EIG: decide the most frequent component of
/// the IC vector (ties broken by value order).
ProtocolFactory eig_strong_consensus();

/// The seed nested-heap-value implementation (std::map over label vectors),
/// kept as the behavioural oracle for the arena encoding: decisions and
/// traces must stay byte-identical (tests/protocols/eig_arena_golden_test).
/// The arena factories above also fall back to it when the dense id space
/// for (n, t) exceeds `eig_paths::layout_fits`.
ProtocolFactory eig_reference_interactive_consistency();
ProtocolFactory eig_reference_strong_consensus();

inline Round eig_rounds(const SystemParams& p) { return p.t + 1; }
inline std::uint32_t eig_min_n(std::uint32_t t) { return 3 * t + 1; }

/// Static communication declarations: (t+1) n (n-1) messages whose level-r
/// report payloads are superpolynomial (O(n^r) tree entries).
statics::CommSpec eig_ic_comm_spec();
statics::CommSpec eig_strong_comm_spec();

/// Dense path-id arithmetic for the arena encoding. A label (p1..pL) with
/// digits in [0, n) — repeats allowed: Byzantine reports may carry them and
/// honest processes relay stored labels verbatim — maps to the integer
/// obtained by reading the digits in base n. Ascending id order within a
/// level is exactly the lexicographic label order the seed's std::map
/// iterated in, which is what keeps arena payloads byte-identical.
namespace eig_paths {

/// id of the empty label (the tree root).
inline constexpr std::uint64_t kRootId = 0;

/// id(α·j) = id(α)·n + j. Pure arithmetic — callers guard overflow via
/// `level_size`/`layout_fits` before trusting the result.
inline constexpr std::uint64_t child_id(std::uint64_t parent, std::uint32_t n,
                                        std::uint32_t j) {
  return parent * n + j;
}

/// Number of dense slots at `level`, i.e. n^level; saturates to
/// UINT64_MAX on overflow.
std::uint64_t level_size(std::uint32_t n, std::uint32_t level);

/// Recovers the digits (p1..pL) of a level-L id, most significant first.
/// `out` is resized to `level`.
void decode_path(std::uint64_t id, std::uint32_t n, std::uint32_t level,
                 std::vector<ProcessId>& out);

/// True iff digit `p` occurs in the level-L label with dense id `id`.
bool path_contains(std::uint64_t id, std::uint32_t n, std::uint32_t level,
                   ProcessId p);

/// True iff the arena encoding is willing to allocate dense levels for
/// (n, t): parent level n^t and leaf level n^{t+1} must stay within fixed
/// slot budgets (the factories fall back to the reference implementation
/// otherwise, preserving behaviour for pathological parameter corners).
bool layout_fits(std::uint32_t n, std::uint32_t t);

}  // namespace eig_paths

}  // namespace ba::protocols
