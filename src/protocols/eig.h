#pragma once

// Exponential Information Gathering (EIG) interactive consistency
// [78, 55, 82]: unauthenticated, n > 3t, t + 1 rounds, messages of size
// O(n^t) — the classic proof-of-solvability construction, practical for small
// t only (the library's phase-king-based protocols cover larger systems).
//
// Every process decides the same vector of n values; the component of every
// correct process equals its proposal (IC-Validity).

#include "runtime/process.h"

#include "statics/comm_spec.h"

namespace ba::protocols {

/// Interactive consistency over arbitrary `Value` proposals. Missing or
/// malformed reports resolve to Value::null().
ProtocolFactory eig_interactive_consistency();

/// Strong consensus derived from EIG: decide the most frequent component of
/// the IC vector (ties broken by value order).
ProtocolFactory eig_strong_consensus();

inline Round eig_rounds(const SystemParams& p) { return p.t + 1; }
inline std::uint32_t eig_min_n(std::uint32_t t) { return 3 * t + 1; }

/// Static communication declarations: (t+1) n (n-1) messages whose level-r
/// report payloads are superpolynomial (O(n^r) tree entries).
statics::CommSpec eig_ic_comm_spec();
statics::CommSpec eig_strong_comm_spec();

}  // namespace ba::protocols
