#pragma once

// Unauthenticated Byzantine broadcast via the classical reduction to strong
// consensus [17, 82]: the sender multicasts its value in round 1 (n - 1
// messages), then all processes run binary strong consensus (phase king) on
// the bit they received. Sender Validity follows from Strong Validity:
// a correct sender puts the same bit everywhere, so all correct processes
// enter consensus with the same proposal.
//
// Binary only (the bit is the interesting case for weak consensus and the
// lower-bound experiments); requires n > 3t.

#include "runtime/process.h"

#include "statics/comm_spec.h"

namespace ba::protocols {

ProtocolFactory unauth_broadcast_bit(ProcessId sender);

/// Sub-quadratic BROKEN broadcast candidate (a Dolev-Reischuk attack
/// target): the sender multicasts its value once and every receiver decides
/// whatever arrived (bottom if nothing). n - 1 messages; correct with a
/// correct sender and no faults, broken by any cut towards a receiver.
ProtocolFactory bb_candidate_direct(ProcessId sender);

/// Slightly stronger broken candidate: one relay round — the sender
/// multicasts, every receiver forwards once to its `k` ring successors, and
/// everyone decides the (first) value seen by round 2. O(n k) messages.
ProtocolFactory bb_candidate_relay_ring(ProcessId sender, std::uint32_t k);

inline Round unauth_broadcast_rounds(const SystemParams& p) {
  return 1 + 3 * (p.t + 1);
}
inline std::uint32_t unauth_broadcast_min_n(std::uint32_t t) {
  return 3 * t + 1;
}

/// Static communication declarations. The correct protocol inherits the
/// phase-king blocks behind a one-round sender multicast; the candidates
/// are the deliberately sub-quadratic attack targets.
statics::CommSpec unauth_broadcast_comm_spec();
statics::CommSpec bb_candidate_direct_comm_spec();
statics::CommSpec bb_candidate_relay_ring_comm_spec(std::uint32_t k);

}  // namespace ba::protocols
