#pragma once

// Parallel composition of protocol instances.
//
// The model allows one message per ordered process pair per round (A.1.1), so
// running k protocol instances side by side requires batching: the composite
// process collects each instance's outbox and ships, per receiver, a single
// bundle ["par", [i, payload_i], ...]; inbound bundles are split and routed
// back to the instances. Decisions of the instances are combined by a
// user-supplied finisher once all instances have decided.

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "runtime/process.h"

namespace ba::protocols {

/// Builds the i-th sub-process for a composite replica.
using InstanceFactory = std::function<std::unique_ptr<Process>(
    std::size_t instance, const ProcessContext& ctx)>;

/// Combines the instances' decisions into the composite decision. Called
/// exactly once, after every instance has decided.
using DecisionCombiner =
    std::function<Value(const std::vector<Value>& instance_decisions)>;

/// A protocol that runs `count` instances in parallel.
ProtocolFactory parallel_composition(std::size_t count,
                                     InstanceFactory make_instance,
                                     DecisionCombiner combine);

}  // namespace ba::protocols
