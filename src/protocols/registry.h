#pragma once

// Name -> factory registry for the synchronous protocols exposed on stable
// string surfaces: the CLI tools (ba_cli, lint_trace) and the campaign
// service (src/service/) resolve protocols through this one function so a
// campaign spec, a sweep entry, and a `ba_cli run` invocation all mean the
// same protocol by the same name. Names align with the comm-spec aliases in
// protocols/comm_specs.{h,cpp} where both registries know the protocol.

#include <cstdint>
#include <optional>
#include <string>

#include "runtime/process.h"

namespace ba::protocols {

/// The factory registered under `name` for an n-process system, or nullopt
/// for an unknown name. Pure: equal (name, n) always produce equivalent
/// factories (authenticated protocols derive their key material from fixed
/// per-name seeds, so two lookups are interchangeable in any run).
std::optional<ProtocolFactory> make_protocol_by_name(const std::string& name,
                                                     std::uint32_t n);

/// Space-separated list of every registered name (usage strings).
const char* registered_protocol_names();

}  // namespace ba::protocols
