#include "protocols/weak_consensus.h"

#include <algorithm>

#include "protocols/adapters.h"
#include "protocols/common.h"
#include "protocols/dolev_strong.h"
#include "protocols/phase_king.h"

namespace ba::protocols {
namespace {

class SilentCandidate final : public DecidingProcess {
 public:
  explicit SilentCandidate(int default_bit) : bit_(default_bit) {}
  Outbox outbox_for_round(Round) override { return {}; }
  void deliver(Round r, const Inbox&) override {
    if (r == 1) decide(Value::bit(bit_));
  }

 private:
  int bit_;
};

class LeaderBeaconCandidate final : public DecidingProcess {
 public:
  LeaderBeaconCandidate(const ProcessContext& ctx, ProcessId leader)
      : params_(ctx.params),
        self_(ctx.self),
        leader_(leader),
        bit_(ctx.proposal.try_bit().value_or(0)) {}

  Outbox outbox_for_round(Round r) override {
    Outbox out;
    if (r == 1 && self_ == leader_) {
      const Value payload = tagged("beacon", {Value::bit(bit_)});
      for (ProcessId p = 0; p < params_.n; ++p) {
        if (p == leader_) continue;
        out.push_back(Outgoing{p, payload});
      }
    }
    return out;
  }

  void deliver(Round r, const Inbox& inbox) override {
    if (r != 1) return;
    if (self_ == leader_) {
      decide(Value::bit(bit_));
      return;
    }
    for (const Message& m : inbox) {
      if (m.sender == leader_ && has_tag(m.payload, "beacon")) {
        if (const Value* v = field(m.payload, 0)) {
          decide(Value::bit(v->try_bit().value_or(1)));
          return;
        }
      }
    }
    decide(Value::bit(1));  // heard nothing: default
  }

 private:
  SystemParams params_;
  ProcessId self_;
  ProcessId leader_;
  int bit_;
};

class GossipRingCandidate final : public DecidingProcess {
 public:
  GossipRingCandidate(const ProcessContext& ctx, std::uint32_t k,
                      Round rounds)
      : params_(ctx.params),
        self_(ctx.self),
        k_(std::min<std::uint32_t>(k, ctx.params.n - 1)),
        rounds_(rounds),
        all_zero_(ctx.proposal.try_bit().value_or(1) == 0) {}

  Outbox outbox_for_round(Round r) override {
    Outbox out;
    if (r > rounds_) return out;
    for (std::uint32_t i = 1; i <= k_; ++i) {
      const ProcessId to = (self_ + i) % params_.n;
      out.push_back(
          Outgoing{to, tagged("gossip", {Value::bit(all_zero_ ? 0 : 1)})});
    }
    return out;
  }

  void deliver(Round r, const Inbox& inbox) override {
    if (r > rounds_) return;
    std::uint32_t heard = 0;
    for (const Message& m : inbox) {
      if (!has_tag(m.payload, "gossip")) continue;
      ++heard;
      if (const Value* v = field(m.payload, 0)) {
        if (v->try_bit().value_or(1) == 1) all_zero_ = false;
      }
    }
    if (heard < k_) all_zero_ = false;  // a silent predecessor is suspicious
    if (r == rounds_) decide(Value::bit(all_zero_ ? 0 : 1));
  }

 private:
  SystemParams params_;
  ProcessId self_;
  std::uint32_t k_;
  Round rounds_;
  bool all_zero_;
};

class OneShotEchoCandidate final : public DecidingProcess {
 public:
  explicit OneShotEchoCandidate(const ProcessContext& ctx)
      : params_(ctx.params),
        self_(ctx.self),
        bit_(ctx.proposal.try_bit().value_or(1)) {}

  Outbox outbox_for_round(Round r) override {
    Outbox out;
    if (r == 1) {
      const Value payload = tagged("echo", {Value::bit(bit_)});
      for (ProcessId p = 0; p < params_.n; ++p) {
        if (p != self_) {
          out.push_back(Outgoing{p, payload});
        }
      }
    }
    return out;
  }

  void deliver(Round r, const Inbox& inbox) override {
    if (r != 1) return;
    bool all_zero = bit_ == 0 && inbox.size() == params_.n - 1;
    for (const Message& m : inbox) {
      if (!has_tag(m.payload, "echo")) {
        all_zero = false;
        continue;
      }
      const Value* v = field(m.payload, 0);
      if (!v || v->try_bit().value_or(1) == 1) all_zero = false;
    }
    decide(Value::bit(all_zero ? 0 : 1));
  }

 private:
  SystemParams params_;
  ProcessId self_;
  int bit_;
};

}  // namespace

ProtocolFactory weak_consensus_auth(
    std::shared_ptr<const crypto::Authenticator> auth) {
  // One Dolev-Strong broadcast with p_0 as sender; decide the delivered bit,
  // defaulting to 1 on bottom()/non-bit. Weak Validity: with everyone
  // correct and unanimous, p_0 broadcasts the common bit and it is decided.
  return map_protocol(
      dolev_strong_broadcast(std::move(auth), /*sender=*/0),
      /*proposal_map=*/nullptr, [](const Value& delivered) {
        return Value::bit(delivered.try_bit().value_or(1));
      });
}

ProtocolFactory weak_consensus_unauth() { return phase_king_consensus(); }

ProtocolFactory wc_candidate_silent(int default_bit) {
  return [default_bit](const ProcessContext&) {
    return std::make_unique<SilentCandidate>(default_bit);
  };
}

ProtocolFactory wc_candidate_leader_beacon(ProcessId leader) {
  return [leader](const ProcessContext& ctx) {
    return std::make_unique<LeaderBeaconCandidate>(ctx, leader);
  };
}

ProtocolFactory wc_candidate_gossip_ring(std::uint32_t k, Round rounds) {
  return [k, rounds](const ProcessContext& ctx) {
    return std::make_unique<GossipRingCandidate>(ctx, k, rounds);
  };
}

ProtocolFactory wc_candidate_one_shot_echo() {
  return [](const ProcessContext& ctx) {
    return std::make_unique<OneShotEchoCandidate>(ctx);
  };
}

statics::CommSpec weak_consensus_auth_comm_spec() {
  statics::CommSpec spec = dolev_strong_comm_spec();
  spec.protocol = "dolev-strong-weak";
  spec.aliases = {"ds-weak"};
  spec.problem = "weak-consensus";
  spec.notes =
      "one Dolev-Strong broadcast with p0 as sender; the decision wrapper "
      "adds no messages, so the broadcast spec carries over unchanged";
  return spec;
}

statics::CommSpec weak_consensus_unauth_comm_spec() {
  statics::CommSpec spec = phase_king_comm_spec();
  spec.protocol = "phase-king";
  spec.aliases = {"phase-king-weak"};
  spec.problem = "weak-consensus";
  spec.notes =
      "phase-king strong consensus reused verbatim: Strong Validity implies "
      "Weak Validity, and the communication structure is identical";
  return spec;
}

statics::CommSpec wc_candidate_silent_comm_spec() {
  statics::CommSpec spec;
  spec.protocol = "silent";
  spec.aliases = {"silent-default"};
  spec.problem = "weak-consensus";
  spec.claims_correct = false;
  spec.resilience = "none (violates Weak Validity outright)";
  spec.notes =
      "sends nothing and decides immediately; the 0-message sanity target "
      "for the Theorem 2 engine";
  return spec;
}

statics::CommSpec wc_candidate_leader_beacon_comm_spec() {
  using statics::PayloadClass;
  using statics::Poly;
  const Poly n = Poly::n();
  statics::CommSpec spec;
  spec.protocol = "leader-beacon";
  spec.aliases = {"beacon"};
  spec.problem = "weak-consensus";
  spec.claims_correct = false;
  spec.resilience = "fault-free runs only (broken by isolating the leader)";
  spec.rounds = Poly(1);
  spec.blocks = {
      {.label = "round 1",
       .rounds = Poly(1),
       .patterns = {{.label = "the leader multicasts its bit",
                     .senders = Poly(1),
                     .receivers_per_sender = n - 1,
                     .payload = PayloadClass::kBit}}}};
  spec.notes = "n - 1 messages: linear, so Theorem 2 must (and does) break it";
  return spec;
}

statics::CommSpec wc_candidate_gossip_ring_comm_spec(std::uint32_t k,
                                                     Round rounds) {
  using statics::PayloadClass;
  using statics::Poly;
  const Poly n = Poly::n();
  const Poly fanout(static_cast<std::int64_t>(k));
  const Poly gossip_rounds(static_cast<std::int64_t>(rounds));
  statics::CommSpec spec;
  spec.protocol = "gossip-ring";
  spec.aliases = {"gossip", "gossip-ring-" + std::to_string(k)};
  spec.problem = "weak-consensus";
  spec.claims_correct = false;
  spec.resilience = "fault-free runs only (broken by cutting the ring)";
  spec.rounds = gossip_rounds;
  spec.blocks = {
      {.label = "gossip rounds",
       .rounds = gossip_rounds,
       .patterns = {{.label =
                         "every process forwards to its k ring successors",
                     .senders = n,
                     .receivers_per_sender = fanout,
                     .payload = PayloadClass::kBit}}}};
  spec.notes =
      "n * k * rounds messages: sub-quadratic for constant k and rounds, so "
      "Theorem 2 must (and does) break it";
  return spec;
}

statics::CommSpec wc_candidate_one_shot_echo_comm_spec() {
  using statics::PayloadClass;
  using statics::Poly;
  const Poly n = Poly::n();
  statics::CommSpec spec;
  spec.protocol = "one-shot-echo";
  spec.problem = "weak-consensus";
  spec.claims_correct = false;
  spec.resilience = "fault-free runs only (broken by one send omission)";
  spec.rounds = Poly(1);
  spec.blocks = {
      {.label = "round 1",
       .rounds = Poly(1),
       .patterns = {{.label = "every process multicasts its bit",
                     .senders = n,
                     .receivers_per_sender = n - 1,
                     .payload = PayloadClass::kBit}}}};
  spec.notes =
      "n(n-1) messages in a single round: the quadratic-but-broken witness "
      "that message cost alone does not buy correctness";
  return spec;
}

}  // namespace ba::protocols
