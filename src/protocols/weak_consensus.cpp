#include "protocols/weak_consensus.h"

#include <algorithm>

#include "protocols/adapters.h"
#include "protocols/common.h"
#include "protocols/dolev_strong.h"
#include "protocols/phase_king.h"

namespace ba::protocols {
namespace {

class SilentCandidate final : public DecidingProcess {
 public:
  explicit SilentCandidate(int default_bit) : bit_(default_bit) {}
  Outbox outbox_for_round(Round) override { return {}; }
  void deliver(Round r, const Inbox&) override {
    if (r == 1) decide(Value::bit(bit_));
  }

 private:
  int bit_;
};

class LeaderBeaconCandidate final : public DecidingProcess {
 public:
  LeaderBeaconCandidate(const ProcessContext& ctx, ProcessId leader)
      : params_(ctx.params),
        self_(ctx.self),
        leader_(leader),
        bit_(ctx.proposal.try_bit().value_or(0)) {}

  Outbox outbox_for_round(Round r) override {
    Outbox out;
    if (r == 1 && self_ == leader_) {
      const Value payload = tagged("beacon", {Value::bit(bit_)});
      for (ProcessId p = 0; p < params_.n; ++p) {
        if (p == leader_) continue;
        out.push_back(Outgoing{p, payload});
      }
    }
    return out;
  }

  void deliver(Round r, const Inbox& inbox) override {
    if (r != 1) return;
    if (self_ == leader_) {
      decide(Value::bit(bit_));
      return;
    }
    for (const Message& m : inbox) {
      if (m.sender == leader_ && has_tag(m.payload, "beacon")) {
        if (const Value* v = field(m.payload, 0)) {
          decide(Value::bit(v->try_bit().value_or(1)));
          return;
        }
      }
    }
    decide(Value::bit(1));  // heard nothing: default
  }

 private:
  SystemParams params_;
  ProcessId self_;
  ProcessId leader_;
  int bit_;
};

class GossipRingCandidate final : public DecidingProcess {
 public:
  GossipRingCandidate(const ProcessContext& ctx, std::uint32_t k,
                      Round rounds)
      : params_(ctx.params),
        self_(ctx.self),
        k_(std::min<std::uint32_t>(k, ctx.params.n - 1)),
        rounds_(rounds),
        all_zero_(ctx.proposal.try_bit().value_or(1) == 0) {}

  Outbox outbox_for_round(Round r) override {
    Outbox out;
    if (r > rounds_) return out;
    for (std::uint32_t i = 1; i <= k_; ++i) {
      const ProcessId to = (self_ + i) % params_.n;
      out.push_back(
          Outgoing{to, tagged("gossip", {Value::bit(all_zero_ ? 0 : 1)})});
    }
    return out;
  }

  void deliver(Round r, const Inbox& inbox) override {
    if (r > rounds_) return;
    std::uint32_t heard = 0;
    for (const Message& m : inbox) {
      if (!has_tag(m.payload, "gossip")) continue;
      ++heard;
      if (const Value* v = field(m.payload, 0)) {
        if (v->try_bit().value_or(1) == 1) all_zero_ = false;
      }
    }
    if (heard < k_) all_zero_ = false;  // a silent predecessor is suspicious
    if (r == rounds_) decide(Value::bit(all_zero_ ? 0 : 1));
  }

 private:
  SystemParams params_;
  ProcessId self_;
  std::uint32_t k_;
  Round rounds_;
  bool all_zero_;
};

class OneShotEchoCandidate final : public DecidingProcess {
 public:
  explicit OneShotEchoCandidate(const ProcessContext& ctx)
      : params_(ctx.params),
        self_(ctx.self),
        bit_(ctx.proposal.try_bit().value_or(1)) {}

  Outbox outbox_for_round(Round r) override {
    Outbox out;
    if (r == 1) {
      const Value payload = tagged("echo", {Value::bit(bit_)});
      for (ProcessId p = 0; p < params_.n; ++p) {
        if (p != self_) {
          out.push_back(Outgoing{p, payload});
        }
      }
    }
    return out;
  }

  void deliver(Round r, const Inbox& inbox) override {
    if (r != 1) return;
    bool all_zero = bit_ == 0 && inbox.size() == params_.n - 1;
    for (const Message& m : inbox) {
      if (!has_tag(m.payload, "echo")) {
        all_zero = false;
        continue;
      }
      const Value* v = field(m.payload, 0);
      if (!v || v->try_bit().value_or(1) == 1) all_zero = false;
    }
    decide(Value::bit(all_zero ? 0 : 1));
  }

 private:
  SystemParams params_;
  ProcessId self_;
  int bit_;
};

}  // namespace

ProtocolFactory weak_consensus_auth(
    std::shared_ptr<const crypto::Authenticator> auth) {
  // One Dolev-Strong broadcast with p_0 as sender; decide the delivered bit,
  // defaulting to 1 on bottom()/non-bit. Weak Validity: with everyone
  // correct and unanimous, p_0 broadcasts the common bit and it is decided.
  return map_protocol(
      dolev_strong_broadcast(std::move(auth), /*sender=*/0),
      /*proposal_map=*/nullptr, [](const Value& delivered) {
        return Value::bit(delivered.try_bit().value_or(1));
      });
}

ProtocolFactory weak_consensus_unauth() { return phase_king_consensus(); }

ProtocolFactory wc_candidate_silent(int default_bit) {
  return [default_bit](const ProcessContext&) {
    return std::make_unique<SilentCandidate>(default_bit);
  };
}

ProtocolFactory wc_candidate_leader_beacon(ProcessId leader) {
  return [leader](const ProcessContext& ctx) {
    return std::make_unique<LeaderBeaconCandidate>(ctx, leader);
  };
}

ProtocolFactory wc_candidate_gossip_ring(std::uint32_t k, Round rounds) {
  return [k, rounds](const ProcessContext& ctx) {
    return std::make_unique<GossipRingCandidate>(ctx, k, rounds);
  };
}

ProtocolFactory wc_candidate_one_shot_echo() {
  return [](const ProcessContext& ctx) {
    return std::make_unique<OneShotEchoCandidate>(ctx);
  };
}

}  // namespace ba::protocols
