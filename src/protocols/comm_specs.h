#pragma once

// The protocol library's CommSpec registry: every protocol the repo's
// surfaces (CLI, sweep, benches, tests) can name declares its spec next to
// its implementation; this header aggregates them for the static analyzer
// (statics/analyzer.h) and resolves the per-surface naming aliases.

#include <string_view>
#include <vector>

#include "statics/comm_spec.h"

namespace ba::protocols {

/// Every CommSpec the protocol library declares, in presentation order
/// (correct protocols first, then the deliberately broken attack targets).
/// Parameterized constructions are registered at the parameters the CLI and
/// sweep actually run them with.
const std::vector<statics::CommSpec>& all_comm_specs();

/// Looks a spec up by its canonical name or any alias (the CLI and the
/// sweep use different names for some constructions). nullptr when unknown.
const statics::CommSpec* find_comm_spec(std::string_view name);

}  // namespace ba::protocols
