#include "protocols/broadcast.h"

#include <memory>

#include "protocols/common.h"
#include "protocols/phase_king.h"

namespace ba::protocols {
namespace {

class UnauthBroadcastProcess final : public DecidingProcess {
 public:
  UnauthBroadcastProcess(const ProcessContext& ctx, ProcessId sender)
      : ctx_(ctx), sender_(sender) {}

  Outbox outbox_for_round(Round r) override {
    if (r == 1) {
      if (ctx_.self != sender_) return {};
      Outbox out;
      const Value payload =
          tagged("bb-init", {Value::bit(ctx_.proposal.try_bit().value_or(0))});
      for (ProcessId p = 0; p < ctx_.params.n; ++p) {
        if (p != sender_) out.push_back(Outgoing{p, payload});
      }
      return out;
    }
    if (!consensus_) return {};
    return consensus_->outbox_for_round(r - 1);
  }

  void deliver(Round r, const Inbox& inbox) override {
    if (r == 1) {
      int bit = 0;
      if (ctx_.self == sender_) {
        bit = ctx_.proposal.try_bit().value_or(0);
      } else {
        for (const Message& m : inbox) {
          if (m.sender != sender_) continue;
          if (!has_tag(m.payload, "bb-init")) continue;
          if (const Value* v = field(m.payload, 0)) {
            bit = v->try_bit().value_or(0);
          }
        }
      }
      ProcessContext inner_ctx = ctx_;
      inner_ctx.proposal = Value::bit(bit);
      consensus_ = phase_king_consensus()(inner_ctx);
      return;
    }
    consensus_->deliver(r - 1, inbox);
    if (!decision()) {
      if (auto d = consensus_->decision()) decide(*d);
    }
  }

  [[nodiscard]] bool quiescent() const override {
    return consensus_ && consensus_->quiescent();
  }

 private:
  ProcessContext ctx_;
  ProcessId sender_;
  std::unique_ptr<Process> consensus_;
};

class DirectBroadcastCandidate final : public DecidingProcess {
 public:
  DirectBroadcastCandidate(const ProcessContext& ctx, ProcessId sender)
      : ctx_(ctx), sender_(sender) {}

  Outbox outbox_for_round(Round r) override {
    Outbox out;
    if (r == 1 && ctx_.self == sender_) {
      // Built once, shared across receivers (COW payload: n - 1 refcount
      // bumps, not n - 1 tagged-vector constructions).
      const Value payload = tagged("bbd", {ctx_.proposal});
      for (ProcessId p = 0; p < ctx_.params.n; ++p) {
        if (p != sender_) {
          out.push_back(Outgoing{p, payload});
        }
      }
    }
    return out;
  }

  void deliver(Round r, const Inbox& inbox) override {
    if (r != 1) return;
    if (ctx_.self == sender_) {
      decide(ctx_.proposal);
      return;
    }
    for (const Message& m : inbox) {
      if (m.sender == sender_ && has_tag(m.payload, "bbd")) {
        if (const Value* v = field(m.payload, 0)) {
          decide(*v);
          return;
        }
      }
    }
    decide(bottom());
  }

 private:
  ProcessContext ctx_;
  ProcessId sender_;
};

class RelayRingCandidate final : public DecidingProcess {
 public:
  RelayRingCandidate(const ProcessContext& ctx, ProcessId sender,
                     std::uint32_t k)
      : ctx_(ctx), sender_(sender), k_(std::min(k, ctx.params.n - 1)) {}

  Outbox outbox_for_round(Round r) override {
    Outbox out;
    if (r == 1 && ctx_.self == sender_) {
      const Value payload = tagged("bbr", {ctx_.proposal});
      for (ProcessId p = 0; p < ctx_.params.n; ++p) {
        if (p != sender_) {
          out.push_back(Outgoing{p, payload});
        }
      }
    } else if (r == 2 && seen_) {
      const Value payload = tagged("bbr", {*seen_});
      for (std::uint32_t i = 1; i <= k_; ++i) {
        const ProcessId to = (ctx_.self + i) % ctx_.params.n;
        if (to != ctx_.self) {
          out.push_back(Outgoing{to, payload});
        }
      }
    }
    return out;
  }

  void deliver(Round r, const Inbox& inbox) override {
    if (r > 2) return;
    if (r == 1 && ctx_.self == sender_) seen_ = ctx_.proposal;
    for (const Message& m : inbox) {
      if (!has_tag(m.payload, "bbr")) continue;
      if (const Value* v = field(m.payload, 0)) {
        if (!seen_) seen_ = *v;
      }
    }
    if (r == 2) decide(seen_ ? *seen_ : bottom());
  }

 private:
  ProcessContext ctx_;
  ProcessId sender_;
  std::uint32_t k_;
  std::optional<Value> seen_;
};

}  // namespace

ProtocolFactory bb_candidate_direct(ProcessId sender) {
  return [sender](const ProcessContext& ctx) {
    return std::make_unique<DirectBroadcastCandidate>(ctx, sender);
  };
}

ProtocolFactory bb_candidate_relay_ring(ProcessId sender, std::uint32_t k) {
  return [sender, k](const ProcessContext& ctx) {
    return std::make_unique<RelayRingCandidate>(ctx, sender, k);
  };
}

ProtocolFactory unauth_broadcast_bit(ProcessId sender) {
  return [sender](const ProcessContext& ctx) {
    return std::make_unique<UnauthBroadcastProcess>(ctx, sender);
  };
}

statics::CommSpec unauth_broadcast_comm_spec() {
  using statics::PayloadClass;
  using statics::Poly;
  const Poly n = Poly::n();
  const Poly t = Poly::t();
  statics::CommSpec spec = phase_king_comm_spec();
  spec.protocol = "unauth-broadcast";
  spec.problem = "broadcast";
  spec.rounds = Poly(1) + Poly(3) * (t + 1);
  spec.blocks.insert(
      spec.blocks.begin(),
      {.label = "round 1",
       .rounds = Poly(1),
       .patterns = {{.label = "the sender multicasts its bit",
                     .senders = Poly(1),
                     .receivers_per_sender = n - 1,
                     .payload = PayloadClass::kBit}}});
  spec.notes =
      "round-1 sender multicast, then phase-king consensus on the received "
      "bit (silence decodes as 0)";
  return spec;
}

statics::CommSpec bb_candidate_direct_comm_spec() {
  using statics::PayloadClass;
  using statics::Poly;
  const Poly n = Poly::n();
  statics::CommSpec spec;
  spec.protocol = "bb-direct";
  spec.problem = "broadcast";
  spec.claims_correct = false;
  spec.resilience = "fault-free runs only (no equivocation defense)";
  spec.rounds = Poly(1);
  spec.blocks = {
      {.label = "round 1",
       .rounds = Poly(1),
       .patterns = {{.label = "the sender multicasts its bit",
                     .senders = Poly(1),
                     .receivers_per_sender = n - 1,
                     .payload = PayloadClass::kBit}}}};
  spec.notes =
      "n - 1 messages: the sender's word is final, so an equivocating "
      "sender splits the correct processes";
  return spec;
}

statics::CommSpec bb_candidate_relay_ring_comm_spec(std::uint32_t k) {
  using statics::PayloadClass;
  using statics::Poly;
  const Poly n = Poly::n();
  const Poly fanout(static_cast<std::int64_t>(k));
  statics::CommSpec spec;
  spec.protocol = "bb-relay-ring";
  spec.aliases = {"bb-relay-ring-" + std::to_string(k)};
  spec.problem = "broadcast";
  spec.claims_correct = false;
  spec.resilience = "fault-free runs only (broken by cutting the ring)";
  spec.rounds = Poly(2);
  spec.blocks = {
      {.label = "round 1",
       .rounds = Poly(1),
       .patterns = {{.label = "the sender multicasts its bit",
                     .senders = Poly(1),
                     .receivers_per_sender = n - 1,
                     .payload = PayloadClass::kBit}}},
      {.label = "round 2",
       .rounds = Poly(1),
       .patterns = {{.label =
                         "every process relays to its k ring successors",
                     .senders = n,
                     .receivers_per_sender = fanout,
                     .payload = PayloadClass::kBit}}}};
  spec.notes = "(n-1) + n*k messages: sub-quadratic for constant k";
  return spec;
}

}  // namespace ba::protocols
