#include "protocols/crusader.h"

#include <array>
#include <memory>
#include <optional>

#include "protocols/common.h"

namespace ba::protocols {
namespace {

class CrusaderProcess final : public DecidingProcess {
 public:
  CrusaderProcess(const ProcessContext& ctx, ProcessId sender)
      : params_(ctx.params),
        self_(ctx.self),
        sender_(sender),
        own_bit_(ctx.proposal.try_bit().value_or(0)) {}

  Outbox outbox_for_round(Round r) override {
    Outbox out;
    if (r == 1 && self_ == sender_) {
      const Value payload = tagged("cru-init", {Value::bit(own_bit_)});
      for (ProcessId p = 0; p < params_.n; ++p) {
        if (p != self_) out.push_back(Outgoing{p, payload});
      }
    } else if (r == 2 && received_.has_value()) {
      const Value payload = tagged("cru-echo", {Value::bit(*received_)});
      for (ProcessId p = 0; p < params_.n; ++p) {
        if (p != self_) out.push_back(Outgoing{p, payload});
      }
    }
    return out;
  }

  void deliver(Round r, const Inbox& inbox) override {
    if (r == 1) {
      if (self_ == sender_) {
        received_ = own_bit_;
      } else {
        for (const Message& m : inbox) {
          if (m.sender != sender_ || !has_tag(m.payload, "cru-init")) continue;
          if (const Value* v = field(m.payload, 0)) received_ = v->try_bit();
        }
      }
      return;
    }
    if (r == 2) {
      std::array<std::uint32_t, 2> echoes{0, 0};
      if (received_) ++echoes[static_cast<std::size_t>(*received_)];
      for (const Message& m : inbox) {
        if (!has_tag(m.payload, "cru-echo")) continue;
        if (const Value* v = field(m.payload, 0)) {
          if (auto b = v->try_bit()) ++echoes[static_cast<std::size_t>(*b)];
        }
      }
      for (int b : {0, 1}) {
        if (echoes[static_cast<std::size_t>(b)] >= params_.n - params_.t) {
          decide(Value::bit(b));
          return;
        }
      }
      decide(bottom());
    }
  }

 private:
  SystemParams params_;
  ProcessId self_;
  ProcessId sender_;
  int own_bit_;
  std::optional<int> received_;
};

}  // namespace

ProtocolFactory crusader_broadcast_bit(ProcessId sender) {
  return [sender](const ProcessContext& ctx) {
    return std::make_unique<CrusaderProcess>(ctx, sender);
  };
}

statics::CommSpec crusader_comm_spec() {
  using statics::PayloadClass;
  using statics::Poly;
  const Poly n = Poly::n();
  statics::CommSpec spec;
  spec.protocol = "crusader";
  spec.problem = "crusader-broadcast";
  spec.resilience = "n > 3t";
  spec.rounds = Poly(2);
  spec.blocks = {
      {.label = "round 1",
       .rounds = Poly(1),
       .patterns = {{.label = "the sender multicasts its bit",
                     .senders = Poly(1),
                     .receivers_per_sender = n - 1,
                     .payload = PayloadClass::kBit}}},
      {.label = "round 2",
       .rounds = Poly(1),
       .patterns = {{.label = "every process echoes what it received",
                     .senders = n,
                     .receivers_per_sender = n - 1,
                     .payload = PayloadClass::kBit}}}};
  spec.notes = "one sender multicast plus one all-to-all echo round";
  return spec;
}

}  // namespace ba::protocols
