#pragma once

// Dolev-Strong authenticated Byzantine broadcast [52]: t + 1 rounds,
// tolerates any t < n corruptions, O(n^2) messages per extracted value.
//
// Problem (Sender Validity): the designated sender proposes; if the sender is
// correct, every correct process decides the sender's proposal. Correct
// processes always agree; when the sender is exposed they decide bottom().
//
// Protocol: in round 1 the sender signs its value and multicasts the
// signature chain. A process that, at the end of round r, holds a valid chain
// of r distinct signatures starting with the sender's on a value it has not
// extracted before, extracts the value, appends its own signature, and
// relays in round r + 1. At the end of round t + 1 a process decides the
// unique extracted value, or bottom() if it extracted zero or >= 2 values.
// A process relays at most two distinct values (two suffice to prove sender
// equivocation), which caps the message complexity.

#include <memory>

#include "crypto/signature.h"
#include "runtime/process.h"

#include "statics/comm_spec.h"

namespace ba::protocols {

/// Factory for one broadcast instance with designated `sender`. All replicas
/// must share the same `auth`. `instance` namespaces payloads so several
/// broadcasts can run in parallel (used by interactive consistency).
ProtocolFactory dolev_strong_broadcast(
    std::shared_ptr<const crypto::Authenticator> auth, ProcessId sender,
    std::uint64_t instance = 0);

/// Number of rounds the protocol runs: t + 1.
inline Round dolev_strong_rounds(const SystemParams& p) { return p.t + 1; }

/// Static communication declaration: (n-1) + 2n(n-1) signature-chain
/// messages over t + 1 rounds (the relay cap is per execution, not per
/// round).
statics::CommSpec dolev_strong_comm_spec();

}  // namespace ba::protocols
