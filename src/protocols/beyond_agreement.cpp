#include "protocols/beyond_agreement.h"

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "protocols/common.h"

namespace ba::protocols {

Round approximate_agreement_rounds(std::int64_t epsilon,
                                   std::int64_t value_bound) {
  Round r = 1;
  std::int64_t diameter = 2 * value_bound;
  while (diameter > epsilon) {
    diameter = (diameter + 1) / 2;
    ++r;
  }
  return r;
}

namespace {

class ApproxAgreementProcess final : public DecidingProcess {
 public:
  ApproxAgreementProcess(const ProcessContext& ctx, std::int64_t epsilon,
                         std::int64_t bound)
      : params_(ctx.params),
        self_(ctx.self),
        rounds_(approximate_agreement_rounds(epsilon, bound)) {
    value_ = ctx.proposal.is_int() ? ctx.proposal.as_int() : 0;
    value_ = std::clamp(value_, -bound, bound);
  }

  Outbox outbox_for_round(Round r) override {
    Outbox out;
    if (r > rounds_) return out;
    const Value payload = tagged("aa", {Value{value_}});
    for (ProcessId p = 0; p < params_.n; ++p) {
      if (p != self_) out.push_back(Outgoing{p, payload});
    }
    return out;
  }

  void deliver(Round r, const Inbox& inbox) override {
    if (r > rounds_) return;
    std::vector<std::int64_t> reports{value_};
    for (const Message& m : inbox) {
      if (!has_tag(m.payload, "aa")) continue;
      if (const Value* v = field(m.payload, 0)) {
        if (v->is_int()) reports.push_back(v->as_int());
      }
    }
    std::sort(reports.begin(), reports.end());
    // Trim the t lowest and t highest: the survivors' range lies inside the
    // range of the CORRECT reports (at most t of the received values are
    // Byzantine), so the midpoint is a valid new estimate.
    const std::size_t t = params_.t;
    if (reports.size() > 2 * t) {
      reports.erase(reports.begin(),
                    reports.begin() + static_cast<std::ptrdiff_t>(t));
      reports.erase(reports.end() - static_cast<std::ptrdiff_t>(t),
                    reports.end());
    }
    value_ = (reports.front() + reports.back()) / 2;
    if (r == rounds_) decide(Value{value_});
  }

 private:
  SystemParams params_;
  ProcessId self_;
  Round rounds_;
  std::int64_t value_;
};

class KSetProcess final : public DecidingProcess {
 public:
  KSetProcess(const ProcessContext& ctx, std::uint32_t k)
      : params_(ctx.params),
        self_(ctx.self),
        rounds_(params_.t / k + 1),
        min_(ctx.proposal) {}

  Outbox outbox_for_round(Round r) override {
    Outbox out;
    if (r > rounds_) return out;
    const Value payload = tagged("kset", {min_});
    for (ProcessId p = 0; p < params_.n; ++p) {
      if (p != self_) out.push_back(Outgoing{p, payload});
    }
    return out;
  }

  void deliver(Round r, const Inbox& inbox) override {
    if (r > rounds_) return;
    for (const Message& m : inbox) {
      if (!has_tag(m.payload, "kset")) continue;
      if (const Value* v = field(m.payload, 0)) {
        if (*v < min_) min_ = *v;
      }
    }
    if (r == rounds_) decide(min_);
  }

 private:
  SystemParams params_;
  ProcessId self_;
  Round rounds_;
  Value min_;
};

}  // namespace

ProtocolFactory approximate_agreement(std::int64_t epsilon,
                                      std::int64_t value_bound) {
  return [epsilon, value_bound](const ProcessContext& ctx) {
    return std::make_unique<ApproxAgreementProcess>(ctx, epsilon,
                                                    value_bound);
  };
}

ProtocolFactory k_set_agreement(std::uint32_t k) {
  return [k](const ProcessContext& ctx) {
    return std::make_unique<KSetProcess>(ctx, k);
  };
}

}  // namespace ba::protocols
