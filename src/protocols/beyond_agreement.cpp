#include "protocols/beyond_agreement.h"

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "protocols/common.h"

namespace ba::protocols {

Round approximate_agreement_rounds(std::int64_t epsilon,
                                   std::int64_t value_bound) {
  Round r = 1;
  std::int64_t diameter = 2 * value_bound;
  while (diameter > epsilon) {
    diameter = (diameter + 1) / 2;
    ++r;
  }
  return r;
}

namespace {

class ApproxAgreementProcess final : public DecidingProcess {
 public:
  ApproxAgreementProcess(const ProcessContext& ctx, std::int64_t epsilon,
                         std::int64_t bound)
      : params_(ctx.params),
        self_(ctx.self),
        rounds_(approximate_agreement_rounds(epsilon, bound)) {
    value_ = ctx.proposal.is_int() ? ctx.proposal.as_int() : 0;
    value_ = std::clamp(value_, -bound, bound);
  }

  Outbox outbox_for_round(Round r) override {
    Outbox out;
    if (r > rounds_) return out;
    const Value payload = tagged("aa", {Value{value_}});
    for (ProcessId p = 0; p < params_.n; ++p) {
      if (p != self_) out.push_back(Outgoing{p, payload});
    }
    return out;
  }

  void deliver(Round r, const Inbox& inbox) override {
    if (r > rounds_) return;
    std::vector<std::int64_t> reports{value_};
    for (const Message& m : inbox) {
      if (!has_tag(m.payload, "aa")) continue;
      if (const Value* v = field(m.payload, 0)) {
        if (v->is_int()) reports.push_back(v->as_int());
      }
    }
    std::sort(reports.begin(), reports.end());
    // Trim the t lowest and t highest: the survivors' range lies inside the
    // range of the CORRECT reports (at most t of the received values are
    // Byzantine), so the midpoint is a valid new estimate.
    const std::size_t t = params_.t;
    if (reports.size() > 2 * t) {
      reports.erase(reports.begin(),
                    reports.begin() + static_cast<std::ptrdiff_t>(t));
      reports.erase(reports.end() - static_cast<std::ptrdiff_t>(t),
                    reports.end());
    }
    value_ = (reports.front() + reports.back()) / 2;
    if (r == rounds_) decide(Value{value_});
  }

 private:
  SystemParams params_;
  ProcessId self_;
  Round rounds_;
  std::int64_t value_;
};

class KSetProcess final : public DecidingProcess {
 public:
  KSetProcess(const ProcessContext& ctx, std::uint32_t k)
      : params_(ctx.params),
        self_(ctx.self),
        rounds_(params_.t / k + 1),
        min_(ctx.proposal) {}

  Outbox outbox_for_round(Round r) override {
    Outbox out;
    if (r > rounds_) return out;
    const Value payload = tagged("kset", {min_});
    for (ProcessId p = 0; p < params_.n; ++p) {
      if (p != self_) out.push_back(Outgoing{p, payload});
    }
    return out;
  }

  void deliver(Round r, const Inbox& inbox) override {
    if (r > rounds_) return;
    for (const Message& m : inbox) {
      if (!has_tag(m.payload, "kset")) continue;
      if (const Value* v = field(m.payload, 0)) {
        if (*v < min_) min_ = *v;
      }
    }
    if (r == rounds_) decide(min_);
  }

 private:
  SystemParams params_;
  ProcessId self_;
  Round rounds_;
  Value min_;
};

}  // namespace

ProtocolFactory approximate_agreement(std::int64_t epsilon,
                                      std::int64_t value_bound) {
  return [epsilon, value_bound](const ProcessContext& ctx) {
    return std::make_unique<ApproxAgreementProcess>(ctx, epsilon,
                                                    value_bound);
  };
}

ProtocolFactory k_set_agreement(std::uint32_t k) {
  return [k](const ProcessContext& ctx) {
    return std::make_unique<KSetProcess>(ctx, k);
  };
}

statics::CommSpec approximate_agreement_comm_spec(std::int64_t epsilon,
                                                  std::int64_t value_bound) {
  using statics::PayloadClass;
  using statics::Poly;
  const Poly n = Poly::n();
  const Poly halving_rounds(static_cast<std::int64_t>(
      approximate_agreement_rounds(epsilon, value_bound)));
  statics::CommSpec spec;
  spec.protocol = "approx-agreement";
  spec.aliases = {"approximate-agreement"};
  spec.problem = "approximate-agreement";
  spec.resilience = "n > 3t";
  spec.rounds = halving_rounds;
  spec.blocks = {
      {.label = "halving rounds",
       .rounds = halving_rounds,
       .patterns = {{.label = "every process multicasts its current value",
                     .senders = n,
                     .receivers_per_sender = n - 1,
                     .payload = PayloadClass::kValue}}}};
  spec.notes =
      "no exact Agreement property, so the paper's lower bound does not "
      "apply (§7); the round count depends on epsilon and the value bound, "
      "not on t";
  return spec;
}

statics::CommSpec k_set_comm_spec(std::uint32_t k) {
  using statics::PayloadClass;
  using statics::Poly;
  const Poly n = Poly::n();
  const Poly t = Poly::t();
  statics::CommSpec spec;
  spec.protocol = "k-set-agreement";
  spec.aliases = {"k-set"};
  spec.problem = "k-set-agreement";
  spec.resilience = "t < n (crash faults)";
  spec.rounds = t + 1;
  spec.blocks = {
      {.label = "flood rounds",
       .rounds = t + 1,
       .patterns = {{.label = "every process multicasts its value set",
                     .senders = n,
                     .receivers_per_sender = n - 1,
                     .payload = PayloadClass::kValueSet}}}};
  spec.notes =
      "exact round count floor(t/" + std::to_string(k) +
      ") + 1 is not a polynomial in t, so the spec records the sound t + 1 "
      "envelope; outside the paper's lower bound (no Agreement property)";
  return spec;
}

}  // namespace ba::protocols
