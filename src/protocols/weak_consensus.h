#pragma once

// Weak consensus — the paper's weakest non-trivial agreement problem.
//
// Interface: propose/decide over bits. Properties: Termination, Agreement,
// and Weak Validity (if ALL processes are correct and all propose the same
// bit, that bit is decided).
//
// This header provides:
//  * correct solutions with matching (quadratic) message complexity:
//      - authenticated, any t < n: one Dolev-Strong broadcast with p_0 as
//        sender; everyone decides the delivered bit (default 1);
//      - unauthenticated, n > 3t: phase-king strong consensus (Strong
//        Validity implies Weak Validity);
//  * deliberately *sub-quadratic candidate* protocols used as targets for
//    the Theorem 2 attack engine — each sends o(t^2) messages, so by the
//    paper it MUST violate weak consensus somewhere, and the lower-bound
//    engine constructs the violating execution.

#include <memory>

#include "crypto/signature.h"
#include "runtime/process.h"

#include "statics/comm_spec.h"

namespace ba::protocols {

/// Correct, authenticated, any t < n. O(n^2) messages, t + 1 rounds.
ProtocolFactory weak_consensus_auth(
    std::shared_ptr<const crypto::Authenticator> auth);

/// Correct, unauthenticated, n > 3t. O(n^2 t) messages, 3(t+1) rounds.
ProtocolFactory weak_consensus_unauth();

// --- Sub-quadratic candidates (provably broken by Theorem 2) -------------

/// Sends nothing, decides `default_bit` immediately. 0 messages.
/// (Violates Weak Validity outright; the trivial sanity target.)
ProtocolFactory wc_candidate_silent(int default_bit = 1);

/// The `leader` multicasts its bit in round 1; everyone decides the received
/// bit and the leader decides its own; a process that hears nothing decides
/// 1. n - 1 messages. (Survives fault-free runs; broken under isolation.)
ProtocolFactory wc_candidate_leader_beacon(ProcessId leader = 0);

/// For `rounds` rounds every process forwards the AND of everything it has
/// heard to its `k` ring successors; decides 0 iff it never saw a 1 and
/// heard from all k predecessors in every round, else 1. O(n*k*rounds)
/// messages. (A "local gossip" protocol; broken under isolation.)
ProtocolFactory wc_candidate_gossip_ring(std::uint32_t k, Round rounds);

/// One all-to-all exchange; decides 0 iff its own bit and all n - 1 received
/// bits are 0, else 1. O(n^2) messages but only ONE round — correct when all
/// processes are correct, broken by a single send-omission (used by tests to
/// show that quadratic cost alone is not sufficient).
ProtocolFactory wc_candidate_one_shot_echo();

// --- Static communication declarations (statics/comm_spec.h) -------------

/// Registered as "dolev-strong-weak" (CLI alias "ds-weak").
statics::CommSpec weak_consensus_auth_comm_spec();

/// Registered as "phase-king" (the CLI name for the weak-validity wrapper).
statics::CommSpec weak_consensus_unauth_comm_spec();

/// The attack targets declare specs too (claims_correct == false exempts
/// them from the lower-bound cross-check; their budgets still gate runs).
statics::CommSpec wc_candidate_silent_comm_spec();
statics::CommSpec wc_candidate_leader_beacon_comm_spec();
statics::CommSpec wc_candidate_gossip_ring_comm_spec(std::uint32_t k,
                                                     Round rounds);
statics::CommSpec wc_candidate_one_shot_echo_comm_spec();

}  // namespace ba::protocols
