#pragma once

// Turpin-Coan extension: multivalued strong consensus from BINARY strong
// consensus, unauthenticated, n > 3t, two extra rounds — the classic
// "extension protocol" family the paper's related work surveys ([88, 34]:
// amortizing/extending agreement to long inputs).
//
//   round 1: everyone multicasts its proposal;
//   round 2: a process that saw some value w at least n - t times (own value
//            included) multicasts w as its "candidate";
//   then:    run binary phase-king consensus on b = [my candidate tally
//            reached n - t]. Decide the majority candidate if the binary
//            outcome is 1, bottom() otherwise.
//
// If any correct process enters the binary phase with b = 1, every correct
// process's top candidate is the same value z (>= n - 2t > t correct
// processes backed z in round 2, and no other value can out-poll it), so
// "decide z" is consistent. If all correct processes have b = 0, binary
// strong validity forces outcome 0 and everyone decides bottom().
// Unanimity: all correct propose v => everyone backs v, b = 1 everywhere,
// binary decides 1, z = v everywhere.

#include "runtime/process.h"

#include "statics/comm_spec.h"

namespace ba::protocols {

ProtocolFactory turpin_coan_multivalued();

inline Round turpin_coan_rounds(const SystemParams& p) {
  return 2 + 3 * (p.t + 1);
}
inline std::uint32_t turpin_coan_min_n(std::uint32_t t) { return 3 * t + 1; }

/// Static communication declaration: 2 n (n-1) value messages in front of
/// the phase-king bit-consensus blocks.
statics::CommSpec turpin_coan_comm_spec();

}  // namespace ba::protocols
