#pragma once

// Beyond exact agreement — the paper's §7 names approximate agreement
// [2, 64, 65, 84] and k-set agreement [24, 48, 49] as the natural problems
// to which its techniques might extend (they do NOT require Agreement, so
// Theorem 3 does not cover them). The library ships the classic synchronous
// protocols for both, so the boundary of the paper's result can be probed
// experimentally (bench E13).
//
// Approximate agreement (Dolev-Lynch-Pinter-Stark-Weihl style, n > 3t):
// processes hold integer (fixed-point) values; each round everyone
// multicasts its value, discards the t lowest and t highest received
// reports, and moves to the midpoint of the rest. The diameter of correct
// values at least halves per round; after ceil(log2(D0 / eps)) rounds all
// correct values are within eps.
//
// k-set agreement (crash model): flood the minimum for floor(t/k) + 1
// rounds; at most k distinct values survive among correct deciders when at
// most t processes crash.

#include <cstdint>

#include "runtime/process.h"

#include "statics/comm_spec.h"

namespace ba::protocols {

/// Approximate agreement over integer values in [-value_bound, value_bound].
/// Decides after enough halving rounds that correct decisions differ by at
/// most `epsilon` (> 0). Requires n > 3t.
ProtocolFactory approximate_agreement(std::int64_t epsilon,
                                      std::int64_t value_bound);

/// Rounds the protocol runs: ceil(log2(2 * value_bound / epsilon)) + 1.
Round approximate_agreement_rounds(std::int64_t epsilon,
                                   std::int64_t value_bound);

/// k-set agreement for the crash model: decide the minimum value seen after
/// floor(t/k) + 1 rounds of flooding. At most k distinct decisions among
/// correct processes with <= t crashes.
ProtocolFactory k_set_agreement(std::uint32_t k);

inline Round k_set_rounds(const SystemParams& p, std::uint32_t k) {
  return p.t / k + 1;
}

/// Static communication declarations. Both problems lack the exact
/// Agreement property, so the paper's lower bound does not apply (§7) and
/// the analyzer exempts them from the cross-check.
statics::CommSpec approximate_agreement_comm_spec(std::int64_t epsilon,
                                                  std::int64_t value_bound);
statics::CommSpec k_set_comm_spec(std::uint32_t k);

}  // namespace ba::protocols
