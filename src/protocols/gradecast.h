#pragma once

// Gradecast (Feldman-Micali graded broadcast): the classic 3-round,
// unauthenticated, n > 3t primitive sitting between crusader broadcast and
// full Byzantine broadcast. Each process outputs a pair (value, grade) with
// grade in {0, 1, 2}:
//   * if the sender is correct, every correct process outputs (v, 2);
//   * any two correct grades differ by at most 1;
//   * if any correct process outputs grade >= 1 for value w, every correct
//     process with grade >= 1 outputs the same w.
// Gradecast is the standard building block for expected-constant-round
// agreement [70] and the graded structure mirrors what the paper's phase-
// king round 2 computes internally ("backed" / "sure").
//
// Protocol: round 1 the sender multicasts v; round 2 everyone echoes what it
// received; round 3 a process that saw n - t echoes for w votes for w;
// outputs: (w, 2) on n - t votes, (w, 1) on t + 1 votes, (bottom, 0)
// otherwise.
//
// Decision encoding: ["grade", value, grade].

#include "runtime/process.h"

#include "statics/comm_spec.h"

namespace ba::protocols {

ProtocolFactory gradecast_bit(ProcessId sender);

/// Unpacks a gradecast decision. Returns nullopt on malformed input.
struct GradecastOutput {
  Value value;
  int grade{0};
};
std::optional<GradecastOutput> parse_gradecast(const Value& decision);

inline Round gradecast_rounds() { return 3; }
inline std::uint32_t gradecast_min_n(std::uint32_t t) { return 3 * t + 1; }

/// Static communication declaration: (n-1) + 2n(n-1) bit messages, 3 rounds.
statics::CommSpec gradecast_comm_spec();

}  // namespace ba::protocols
