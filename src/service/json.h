#pragma once

// Minimal JSON document model for the campaign service.
//
// The CampaignSpec surface (docs/SERVICE.md) is JSON because campaign files
// are written by humans and external sweep generators; everything else in
// the repo that *emits* JSON (bench writers, NDJSON rows) does so by string
// building. This is the one place that *parses* it, so the parser is scoped
// to exactly what specs and result rows need: objects, arrays, strings,
// 64-bit integers, doubles, booleans, null, UTF-8 passthrough, and the
// standard two-character escapes. Parse errors throw std::runtime_error
// with a byte offset so a broken campaign file is diagnosable.
//
// Objects preserve no duplicate keys (last wins) and are stored in a sorted
// std::map: iteration order is deterministic by construction, which keeps
// the service replay-safe (tools/check_determinism.py scans this tree).

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace ba::service {

class Json {
 public:
  // kUint holds non-negative integers above INT64_MAX (campaign seeds and
  // SipHash-derived values use the full 64-bit range); smaller integers
  // always parse as kInt.
  enum class Kind {
    kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject
  };

  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() = default;
  explicit Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit Json(std::int64_t i) : kind_(Kind::kInt), int_(i) {}
  explicit Json(std::uint64_t u) : kind_(Kind::kUint), uint_(u) {}
  explicit Json(double d) : kind_(Kind::kDouble), double_(d) {}
  explicit Json(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  explicit Json(Array a) : kind_(Kind::kArray), array_(std::move(a)) {}
  explicit Json(Object o) : kind_(Kind::kObject), object_(std::move(o)) {}

  /// Parses `text` as one JSON document (trailing non-whitespace is an
  /// error). Throws std::runtime_error with a byte offset on malformed
  /// input.
  static Json parse(std::string_view text);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_int() const { return kind_ == Kind::kInt; }
  /// Any integer, either representation.
  [[nodiscard]] bool is_integer() const {
    return kind_ == Kind::kInt || kind_ == Kind::kUint;
  }
  [[nodiscard]] bool is_number() const {
    return is_integer() || kind_ == Kind::kDouble;
  }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw std::runtime_error on kind mismatch (the error
  /// names the expected kind so spec validation messages stay readable).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;    // accepts fitting kUint too
  [[nodiscard]] std::uint64_t as_uint() const;  // accepts non-negative kInt
  [[nodiscard]] double as_double() const;       // accepts any integer kind
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(const std::string& key) const;

 private:
  Kind kind_{Kind::kNull};
  bool bool_{false};
  std::int64_t int_{0};
  std::uint64_t uint_{0};
  double double_{0.0};
  std::string string_;
  Array array_;
  Object object_;
};

/// Appends `s` to `out` with JSON string escaping (quotes, backslash,
/// control characters). Shared by every NDJSON/JSON emitter in the service.
void json_escape_to(std::string& out, std::string_view s);

}  // namespace ba::service
