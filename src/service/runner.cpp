#include "service/runner.h"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "service/json.h"
#include "service/ndjson.h"
#include "service/worker.h"

namespace ba::service {
namespace {

namespace fs = std::filesystem;

// Coordinator wall clock. Control-plane only: it drives heartbeat staleness
// and the summary's wall_micros, and never reaches a result row — rows are
// pure functions of (spec, task) by construction (campaign.h).
using Clock = std::chrono::steady_clock;

[[noreturn]] void serve_error(const std::string& what) {
  throw std::runtime_error("serve: " + what);
}

std::string read_file_or_empty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// tmp + rename so a killed coordinator never leaves a torn file behind.
void write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) serve_error("cannot write " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) serve_error("cannot rename " + tmp + ": " + ec.message());
}

struct Fold {
  /// task index -> canonical row line, for every authenticated row found.
  std::map<std::uint64_t, std::string> rows;
  /// Lines that failed authentication or belong to no task of this
  /// campaign (corrupted cache, foreign rows) — recomputed, not trusted.
  std::uint64_t rejected{0};
};

/// Folds every completed row the state directory holds: the consolidated
/// cache plus any shard files a previous (killed) invocation left behind.
Fold fold_rows(const std::string& state_dir,
               const std::map<std::uint64_t, std::uint64_t>& hash_to_index) {
  Fold fold;
  std::vector<std::string> sources{cache_path(state_dir)};
  std::error_code ec;
  std::vector<std::string> shard_files;
  for (const auto& entry : fs::directory_iterator(shard_dir(state_dir), ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".ndjson") {
      shard_files.push_back(entry.path().string());
    }
  }
  std::sort(shard_files.begin(), shard_files.end());
  sources.insert(sources.end(), shard_files.begin(), shard_files.end());

  for (const std::string& source : sources) {
    for (const std::string& line : read_ndjson_lines(source)) {
      if (line.empty()) continue;
      const auto row = decode_row(line);
      if (!row) {
        ++fold.rejected;  // torn tail line, bit flip, or hand-edited row
        continue;
      }
      const auto it = hash_to_index.find(row->spec_hash);
      if (it == hash_to_index.end()) {
        ++fold.rejected;  // authenticated, but not a task of this campaign
        continue;
      }
      fold.rows.emplace(it->second, line);  // duplicates are identical bytes
    }
  }
  return fold;
}

struct WorkerProc {
  pid_t pid{-1};
  std::uint32_t shard{0};
  bool done{false};
  std::uint64_t last_heartbeat{0};
  Clock::time_point last_progress;
};

pid_t spawn_worker(const std::string& exe, const std::string& state_dir,
                   std::uint32_t shard, std::uint64_t die_after) {
  std::vector<std::string> args{exe, "serve-worker", "--state", state_dir,
                                "--shard", std::to_string(shard)};
  if (die_after != 0) {
    args.push_back("--die-after");
    args.push_back(std::to_string(die_after));
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);

  const pid_t pid = fork();
  if (pid < 0) serve_error(std::string("fork: ") + std::strerror(errno));
  if (pid == 0) {
    execv(exe.c_str(), argv.data());
    std::fprintf(stderr, "serve-worker: execv %s: %s\n", exe.c_str(),
                 std::strerror(errno));
    _exit(127);
  }
  return pid;
}

std::uint64_t read_heartbeat(const std::string& path) {
  std::ifstream in(path);
  std::uint64_t rows = 0;
  in >> rows;
  return in ? rows : 0;
}

void note(const ServeOptions& options, const char* fmt, auto... args) {
  if (options.quiet) return;
  std::fprintf(stderr, fmt, args...);
}

}  // namespace

ServeSummary serve_campaign(const CampaignSpec& spec,
                            const ServeOptions& options) {
  const auto t0 = Clock::now();  // determinism: summary timing only, never row bytes
  spec.validate();
  if (options.state_dir.empty()) serve_error("empty state directory");

  std::error_code ec;
  fs::create_directories(shard_dir(options.state_dir), ec);
  if (ec) serve_error("cannot create state dir: " + ec.message());
  fs::create_directories(lease_dir(options.state_dir), ec);
  if (ec) serve_error("cannot create state dir: " + ec.message());

  // A state directory binds to exactly one campaign: resuming with a
  // different spec would silently mix two incompatible task orders.
  const std::string canonical = spec.to_json();
  const std::string spec_file = campaign_json_path(options.state_dir);
  const std::string existing = read_file_or_empty(spec_file);
  if (existing.empty()) {
    write_file_atomic(spec_file, canonical);
  } else if (existing != canonical) {
    serve_error("state dir " + options.state_dir +
                " holds a different campaign; refusing to mix results");
  }

  const std::uint64_t count = spec.task_count();
  std::map<std::uint64_t, std::uint64_t> hash_to_index;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!hash_to_index.emplace(task_spec_hash(spec, spec.task_at(i)), i)
             .second) {
      serve_error("spec-hash collision inside one campaign (change "
                  "master_seed)");
    }
  }

  ServeSummary summary;
  summary.tasks_total = count;
  summary.results_file = results_path(options.state_dir);

  const Fold before = fold_rows(options.state_dir, hash_to_index);
  summary.tasks_cached = before.rows.size();
  summary.rows_rejected = before.rejected;

  std::vector<std::uint64_t> pending;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!before.rows.contains(i)) pending.push_back(i);
  }
  summary.tasks_run = pending.size();

  if (!pending.empty()) {
    const std::uint32_t worker_count = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        std::max<std::uint32_t>(options.workers, 1), pending.size()));
    summary.workers_used = worker_count;
    note(options, "serve: %llu/%llu tasks pending across %u workers\n",
         static_cast<unsigned long long>(pending.size()),
         static_cast<unsigned long long>(count), worker_count);

    // Contiguous balanced chunks of the pending list, one lease per shard.
    std::vector<std::vector<std::uint64_t>> chunks(worker_count);
    const std::uint64_t base = pending.size() / worker_count;
    const std::uint64_t extra = pending.size() % worker_count;
    std::uint64_t cursor = 0;
    for (std::uint32_t s = 0; s < worker_count; ++s) {
      const std::uint64_t take = base + (s < extra ? 1 : 0);
      chunks[s].assign(pending.begin() + static_cast<std::ptrdiff_t>(cursor),
                       pending.begin() +
                           static_cast<std::ptrdiff_t>(cursor + take));
      cursor += take;
    }
    for (std::uint32_t s = 0; s < worker_count; ++s) {
      std::string lease;
      for (const std::uint64_t index : chunks[s]) {
        lease += std::to_string(index);
        lease += "\n";
      }
      write_file_atomic(lease_path(options.state_dir, s), lease);
    }

    const std::string exe =
        options.worker_exe.empty() ? "/proc/self/exe" : options.worker_exe;
    std::vector<WorkerProc> workers(worker_count);
    const auto spawn = [&](std::uint32_t s, std::uint64_t die_after) {
      workers[s].shard = s;
      workers[s].pid = spawn_worker(exe, options.state_dir, s, die_after);
      workers[s].last_heartbeat = 0;
      workers[s].last_progress = Clock::now();  // determinism: heartbeat control plane
    };
    for (std::uint32_t s = 0; s < worker_count; ++s) {
      spawn(s, options.die_after);
    }

    const auto kill_all = [&] {
      for (WorkerProc& w : workers) {
        if (w.pid > 0) {
          kill(w.pid, SIGKILL);
          int status = 0;
          waitpid(w.pid, &status, 0);
          w.pid = -1;
        }
      }
    };

    // A dead worker's completed rows are already on disk; re-lease only
    // what its shard file does not cover, then respawn (without the
    // die_after hook, so reclaim converges).
    const auto reclaim = [&](std::uint32_t s, const char* why) {
      if (summary.respawns >= options.respawn_budget) {
        kill_all();
        serve_error(std::string("worker ") + std::to_string(s) + " died (" +
                    why + ") with respawn budget exhausted; state dir is "
                    "resumable — rerun serve with the same spec");
      }
      ++summary.respawns;
      std::set<std::uint64_t> covered;
      for (const std::string& line :
           read_ndjson_lines(shard_path(options.state_dir, s))) {
        if (const auto row = decode_row(line)) {
          const auto it = hash_to_index.find(row->spec_hash);
          if (it != hash_to_index.end()) covered.insert(it->second);
        }
      }
      std::string lease;
      std::uint64_t remaining = 0;
      for (const std::uint64_t index : chunks[s]) {
        if (covered.contains(index)) continue;
        lease += std::to_string(index);
        lease += "\n";
        ++remaining;
      }
      if (remaining == 0) {
        workers[s].done = true;
        workers[s].pid = -1;
        note(options, "serve: worker %u died (%s) with lease complete\n", s,
             why);
        return;
      }
      write_file_atomic(lease_path(options.state_dir, s), lease);
      note(options,
           "serve: worker %u died (%s); reclaimed lease, %llu tasks left, "
           "respawning\n",
           s, why, static_cast<unsigned long long>(remaining));
      spawn(s, 0);
    };

    const auto all_done = [&] {
      for (const WorkerProc& w : workers) {
        if (!w.done) return false;
      }
      return true;
    };

    while (!all_done()) {
      int status = 0;
      pid_t reaped = 0;
      while ((reaped = waitpid(-1, &status, WNOHANG)) > 0) {
        for (WorkerProc& w : workers) {
          if (w.pid != reaped) continue;
          w.pid = -1;
          if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
            w.done = true;
          } else {
            reclaim(w.shard,
                    WIFSIGNALED(status) ? "killed by signal" : "exited nonzero");
          }
          break;
        }
      }
      const auto now = Clock::now();  // determinism: heartbeat control plane
      for (WorkerProc& w : workers) {
        if (w.done || w.pid <= 0) continue;
        const std::uint64_t hb =
            read_heartbeat(heartbeat_path(options.state_dir, w.shard));
        if (hb != w.last_heartbeat) {
          w.last_heartbeat = hb;
          w.last_progress = now;
        } else if (now - w.last_progress >
                   std::chrono::milliseconds(options.heartbeat_stale_ms)) {
          kill(w.pid, SIGKILL);
          waitpid(w.pid, &status, 0);
          w.pid = -1;
          reclaim(w.shard, "heartbeat stale");
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(options.poll_ms));
    }
  }

  // Merge. Every row now sits in a shard file or the cache; walk the task
  // order and emit — shard boundaries cannot reorder the output.
  const Fold after = fold_rows(options.state_dir, hash_to_index);
  if (after.rows.size() != count) {
    serve_error("merge found " + std::to_string(after.rows.size()) + "/" +
                std::to_string(count) +
                " rows; state dir kept for inspection");
  }
  {
    NdjsonFileWriter results(results_path(options.state_dir));
    for (const auto& [index, line] : after.rows) results.write_line(line);
  }

  // Consolidate: the cache becomes the full row set and the per-run debris
  // (shards, leases, heartbeats) is dropped, so the next resume folds one
  // file and the next campaign in this directory starts clean.
  std::string cache;
  for (const auto& [index, line] : after.rows) {
    cache += line;
    cache += "\n";
  }
  write_file_atomic(cache_path(options.state_dir), cache);
  for (const std::string& dir :
       {shard_dir(options.state_dir), lease_dir(options.state_dir)}) {
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      fs::remove(entry.path(), ec);
    }
  }

  summary.wall_micros = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0)
          .count());  // determinism: summary timing only, never row bytes
  note(options, "serve: %llu rows (%llu cached) -> %s\n",
       static_cast<unsigned long long>(count),
       static_cast<unsigned long long>(summary.tasks_cached),
       summary.results_file.c_str());
  return summary;
}

ServeSummary run_campaign_serial(const CampaignSpec& spec,
                                 const std::string& out_path) {
  const auto t0 = Clock::now();  // determinism: summary timing only, never row bytes
  spec.validate();
  const TaskRunner runner(spec);
  const std::uint64_t count = spec.task_count();
  ServeSummary summary;
  summary.tasks_total = count;
  summary.tasks_run = count;
  summary.workers_used = 1;
  summary.results_file = out_path;
  NdjsonFileWriter out(out_path);
  for (std::uint64_t i = 0; i < count; ++i) {
    out.write_line(encode_row(runner.run(spec.task_at(i))));
  }
  summary.wall_micros = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0)
          .count());  // determinism: summary timing only, never row bytes
  return summary;
}

std::string bench_service_json(const CampaignSpec& spec,
                               const ServeSummary& summary) {
  const double secs =
      static_cast<double>(summary.wall_micros) / 1e6;
  const double rows_per_sec =
      secs > 0.0 ? static_cast<double>(summary.tasks_run) / secs : 0.0;
  char buf[160];
  std::string out = "{\n  \"experiment\": \"service_campaign\",\n";
  out += "  \"campaign\": \"";
  json_escape_to(out, spec.name);
  out += "\",\n";
  std::snprintf(buf, sizeof buf,
                "  \"specs\": %llu,\n  \"workers\": %u,\n"
                "  \"respawns\": %u,\n  \"tasks_run\": %llu,\n"
                "  \"wall_micros\": %llu,\n  \"rows_per_sec\": %.1f\n}\n",
                static_cast<unsigned long long>(summary.tasks_total),
                summary.workers_used, summary.respawns,
                static_cast<unsigned long long>(summary.tasks_run),
                static_cast<unsigned long long>(summary.wall_micros),
                rows_per_sec);
  out += buf;
  return out;
}

}  // namespace ba::service
