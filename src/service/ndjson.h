#pragma once

// Streaming NDJSON plumbing for the campaign service and the sweep CLI.
//
// Campaigns at 10^4..10^6 specs cannot accumulate rows in memory; every
// producer in src/service/ writes rows to disk the moment they exist. Two
// pieces:
//
//   * NdjsonFileWriter — append one line per row to a file, flushed per
//     line, so a SIGKILLed worker loses at most the row it was writing
//     (a torn final line fails decode_row's hash check and is recomputed).
//   * OrderedNdjsonWriter — a reorder buffer for producers that complete
//     out of order (the experiment pool): lines are emitted to the sink in
//     strictly increasing index order, buffering only the out-of-order
//     window, which keeps `ba_cli sweep --out` byte-identical across
//     jobs ∈ {1, 2, 8}.

#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace ba::service {

/// Line-at-a-time NDJSON file writer. Each write_line appends `line` plus a
/// newline and flushes, so readers (and crash recovery) see every completed
/// row. Throws std::runtime_error when the file cannot be opened.
class NdjsonFileWriter {
 public:
  /// Opens `path`; truncates when `truncate`, appends otherwise.
  explicit NdjsonFileWriter(const std::string& path, bool truncate = true);

  /// `line` must not contain '\n'.
  void write_line(std::string_view line);

  [[nodiscard]] std::uint64_t lines_written() const { return lines_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::uint64_t lines_{0};
};

/// Reorder buffer: accepts (index, line) pairs in any order and forwards
/// lines to the sink in index order 0, 1, 2, ... Pending lines are held
/// only while a predecessor is outstanding.
class OrderedNdjsonWriter {
 public:
  using Sink = std::function<void(std::string_view)>;

  explicit OrderedNdjsonWriter(Sink sink) : sink_(std::move(sink)) {}

  /// Emits or buffers one line. Indices must be unique; throws
  /// std::runtime_error on a duplicate or already-emitted index.
  void put(std::uint64_t index, std::string line);

  /// True iff every buffered line has been emitted.
  [[nodiscard]] bool drained() const { return pending_.empty(); }
  [[nodiscard]] std::uint64_t emitted() const { return next_; }

 private:
  Sink sink_;
  std::map<std::uint64_t, std::string> pending_;  // out-of-order window
  std::uint64_t next_{0};
};

/// Reads `path` into one string per line (trailing newline dropped, no
/// other trimming). A missing file yields an empty vector — for crash
/// recovery, "no shard file yet" and "no rows yet" are the same state.
[[nodiscard]] std::vector<std::string> read_ndjson_lines(
    const std::string& path);

}  // namespace ba::service
