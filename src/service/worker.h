#pragma once

// The shard-worker side of the campaign service: what runs inside each
// worker *process* forked by the coordinator (service/runner.h), and the
// state-directory layout both sides share.
//
// A campaign state directory looks like
//
//   <state>/campaign.json        canonical spec (coordinator-written; a
//                                resume with a different spec is refused)
//   <state>/cache.ndjson         content-addressed result cache: one
//                                authenticated row per completed task
//   <state>/results.ndjson       final merged output, task order (written
//                                only on successful completion)
//   <state>/shards/shard-NNN.ndjson   per-shard streaming rows (append)
//   <state>/leases/shard-NNN.lease    task indices leased to shard NNN,
//                                     one decimal index per line
//   <state>/leases/shard-NNN.hb       heartbeat: rows written by the
//                                     current worker incarnation
//
// The worker is deliberately dumb: read the spec, read the lease, run each
// leased task, append the row, bump the heartbeat. All scheduling policy —
// chunking, dead-worker detection, lease reclaim, merging — lives in the
// coordinator. Rows are pure functions of (spec, task), so a worker killed
// and replaced mid-lease changes nothing about the merged bytes.

#include <cstdint>
#include <string>

namespace ba::service {

/// Path helpers for the layout above (shared by worker and coordinator).
[[nodiscard]] std::string campaign_json_path(const std::string& state_dir);
[[nodiscard]] std::string cache_path(const std::string& state_dir);
[[nodiscard]] std::string results_path(const std::string& state_dir);
[[nodiscard]] std::string shard_dir(const std::string& state_dir);
[[nodiscard]] std::string lease_dir(const std::string& state_dir);
[[nodiscard]] std::string shard_path(const std::string& state_dir,
                                     std::uint32_t shard);
[[nodiscard]] std::string lease_path(const std::string& state_dir,
                                     std::uint32_t shard);
[[nodiscard]] std::string heartbeat_path(const std::string& state_dir,
                                         std::uint32_t shard);

struct WorkerOptions {
  std::string state_dir;
  std::uint32_t shard{0};
  /// Test hook for the crash/resume suite: after appending this many rows,
  /// the worker raises SIGKILL against itself — indistinguishable from an
  /// external kill. 0 disables.
  std::uint64_t die_after{0};
};

/// Runs one shard worker to completion: loads the campaign spec and the
/// shard's lease, skips leased tasks whose rows already sit in the shard
/// file (a respawned worker resumes its own partial work), runs the rest in
/// lease order, appends one authenticated NDJSON row per task, and bumps
/// the heartbeat file after every row.
///
/// Returns a process exit code: 0 on completion, 1 on any error (the error
/// is printed to stderr; the coordinator treats nonzero as a dead worker).
int run_shard_worker(const WorkerOptions& options);

}  // namespace ba::service
