#include "service/worker.h"

#include <csignal>
#include <cstdio>
#include <exception>
#include <fstream>
#include <set>
#include <sstream>
#include <vector>

#include "service/campaign.h"
#include "service/ndjson.h"

namespace ba::service {
namespace {

std::string shard_stem(std::uint32_t shard) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "shard-%03u", shard);
  return buf;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("worker: cannot read " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// One decimal task index per line; blank lines ignored.
std::vector<std::uint64_t> read_lease(const std::string& path) {
  std::vector<std::uint64_t> indices;
  for (const std::string& line : read_ndjson_lines(path)) {
    if (line.empty()) continue;
    std::uint64_t index = 0;
    std::size_t used = 0;
    index = std::stoull(line, &used);
    if (used != line.size()) {
      throw std::runtime_error("worker: malformed lease line '" + line + "'");
    }
    indices.push_back(index);
  }
  if (indices.empty()) {
    throw std::runtime_error("worker: empty or missing lease " + path);
  }
  return indices;
}

void write_heartbeat(const std::string& path, std::uint64_t rows) {
  std::ofstream out(path, std::ios::trunc);
  out << rows << "\n";
  out.flush();
}

}  // namespace

std::string campaign_json_path(const std::string& state_dir) {
  return state_dir + "/campaign.json";
}
std::string cache_path(const std::string& state_dir) {
  return state_dir + "/cache.ndjson";
}
std::string results_path(const std::string& state_dir) {
  return state_dir + "/results.ndjson";
}
std::string shard_dir(const std::string& state_dir) {
  return state_dir + "/shards";
}
std::string lease_dir(const std::string& state_dir) {
  return state_dir + "/leases";
}
std::string shard_path(const std::string& state_dir, std::uint32_t shard) {
  return shard_dir(state_dir) + "/" + shard_stem(shard) + ".ndjson";
}
std::string lease_path(const std::string& state_dir, std::uint32_t shard) {
  return lease_dir(state_dir) + "/" + shard_stem(shard) + ".lease";
}
std::string heartbeat_path(const std::string& state_dir, std::uint32_t shard) {
  return lease_dir(state_dir) + "/" + shard_stem(shard) + ".hb";
}

int run_shard_worker(const WorkerOptions& options) {
  try {
    const CampaignSpec spec =
        CampaignSpec::from_json(read_file(campaign_json_path(options.state_dir)));
    const std::vector<std::uint64_t> lease =
        read_lease(lease_path(options.state_dir, options.shard));

    // A respawned worker finds its predecessor's rows in the shard file;
    // re-running those tasks would only append identical duplicate lines
    // (rows are pure), but skipping them is what makes respawn cheap.
    const std::string shard_file =
        shard_path(options.state_dir, options.shard);
    std::set<std::uint64_t> done;
    for (const std::string& line : read_ndjson_lines(shard_file)) {
      if (const auto row = decode_row(line)) done.insert(row->spec_hash);
    }

    NdjsonFileWriter out(shard_file, /*truncate=*/false);
    const std::string hb = heartbeat_path(options.state_dir, options.shard);
    write_heartbeat(hb, 0);

    const TaskRunner runner(spec);
    std::uint64_t written = 0;
    for (const std::uint64_t index : lease) {
      const TaskSpec task = spec.task_at(index);
      if (done.contains(task_spec_hash(spec, task))) continue;
      out.write_line(encode_row(runner.run(task)));
      ++written;
      write_heartbeat(hb, written);
      if (options.die_after != 0 && written >= options.die_after) {
        // Crash/resume test hook: die exactly the way an external
        // `kill -9` looks to the coordinator.
        std::raise(SIGKILL);
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve-worker[%u]: %s\n", options.shard, e.what());
    return 1;
  }
}

}  // namespace ba::service
