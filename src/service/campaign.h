#pragma once

// CampaignSpec: the sweep-at-scale campaign surface of `ba_cli serve`.
//
// A campaign is a grid of *experiment specs* — the cross product
//
//     protocol x (n, t) x backend x fault plan x seed index
//
// expanded into a deterministic, totally-ordered task list. The order is
// axis-major exactly as written above (seed index fastest), so task indices
// are a pure function of the spec and two expansions of the same spec agree
// on every index regardless of sharding. Each task carries an index-keyed
// SipHash seed (parallel/seed.h) and a 64-bit content hash of its canonical
// encoding; the hash keys the result cache that makes campaigns resumable
// (service/runner.h).
//
// Every task evaluates to exactly one self-describing NDJSON row
// (CampaignRow): spec hash, seed, observed messages vs the statically
// derived bound (src/statics/), decision outcome, and backend provenance.
// Rows are pure functions of their task, carry no wall-clock or worker
// identity, and re-encode byte-identically — that is what lets a sharded,
// killed, resumed campaign merge to the same bytes as a single-shot run.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "engine/backend.h"
#include "runtime/process.h"
#include "runtime/types.h"

namespace ba::service {

/// One grid point of a campaign: everything needed to run it, independent
/// of every other task.
struct TaskSpec {
  std::uint64_t index{0};
  std::string protocol;
  SystemParams params;
  std::string backend;  // engine registry spec, e.g. "lockstep", "sim:jitter,7"
  std::string fault;    // fault-plan name, e.g. "fault-free", "crash:1"
  std::uint64_t seed_index{0};
  /// parallel::derive_task_seed(master_seed, index): drives proposals and
  /// any randomized fault plan for this task.
  std::uint64_t seed{0};
};

struct CampaignSpec {
  std::string name{"campaign"};
  std::uint64_t master_seed{1};
  std::vector<std::string> protocols;       // protocols/registry.h names
  std::vector<SystemParams> grid;           // (n, t) points
  std::vector<std::string> backends{std::string{"lockstep"}};
  /// Explicit fault plans (faults/fault_spec.h grammar, docs/FAULTS.md).
  /// Mutually exclusive with `fault_axis` — clear this when setting that.
  std::vector<std::string> faults{std::string{"fault-free"}};
  /// Fault axis: sweepable fault kinds ("isolate", "crash", ...) expanded
  /// into one plan per kind per count in `fault_counts` — the f axis of the
  /// campaign. Rows of a fault-axis campaign additionally carry "f" and
  /// "static_bound_f" (the bound evaluated at the row's actual fault count).
  std::vector<std::string> fault_axis;
  /// Counts the fault axis sweeps; empty = 0..min t over the grid.
  std::vector<std::uint32_t> fault_counts;
  std::uint64_t seeds{1};                   // seed indices 0..seeds-1

  friend bool operator==(const CampaignSpec&, const CampaignSpec&) = default;

  /// Parses the JSON campaign format (docs/SERVICE.md):
  ///   {"name": "...", "master_seed": 7,
  ///    "protocols": ["phase-king", ...],
  ///    "grid": ["4:1", {"n": 8, "t": 2}, ...],
  ///    "backends": ["lockstep", "sim:sync,1"],
  ///    "faults": ["fault-free", "crash:1"],
  ///    "fault_axis": ["isolate"], "fault_counts": [0, 1, 2],
  ///    "seeds": 25}
  /// Missing backends/faults/seeds take the defaults above ("faults" and
  /// "fault_axis" are mutually exclusive). Throws std::runtime_error naming
  /// the offending field; the returned spec has passed validate().
  static CampaignSpec from_json(std::string_view text);

  /// Canonical JSON encoding (sorted, fixed field order). Two specs are the
  /// same campaign iff their canonical encodings are byte-equal — the
  /// coordinator uses this to refuse resuming a state directory with a
  /// different spec.
  [[nodiscard]] std::string to_json() const;

  /// Structural validation: non-empty axes, valid (n, t) points, resolvable
  /// protocol names, parseable backend specs (the async backend is rejected
  /// — campaigns run synchronous protocols), fault plans that fit every
  /// grid point's fault budget, sweepable fault-axis kinds. Throws
  /// std::runtime_error on the first problem; unknown fault plans throw the
  /// pinned faults::parse_fault_spec message unchanged, so every surface
  /// (run/sim/sweep/serve) reports the same string.
  void validate() const;

  /// The fault strings of the fault-plan axis: `faults` verbatim, or the
  /// fault_axis x fault_counts expansion ("isolate:0", "isolate:1", ...).
  [[nodiscard]] std::vector<std::string> effective_faults() const;

  /// True when rows carry the per-f columns (f, static_bound_f).
  [[nodiscard]] bool has_fault_axis() const { return !fault_axis.empty(); }

  [[nodiscard]] std::uint64_t task_count() const;

  /// The task at `index` of the canonical total order; index < task_count().
  [[nodiscard]] TaskSpec task_at(std::uint64_t index) const;
};

/// The canonical encoding of one task: what the spec hash is computed over.
/// Includes the master seed, so campaigns with different seeding never share
/// cache entries.
[[nodiscard]] std::string canonical_task_encoding(const CampaignSpec& spec,
                                                  const TaskSpec& task);

/// SipHash-2-4 (fixed service key) of canonical_task_encoding — the cache
/// key and the row's "spec" field.
[[nodiscard]] std::uint64_t task_spec_hash(const CampaignSpec& spec,
                                           const TaskSpec& task);

/// One result row. Everything a downstream chart needs, self-describing.
struct CampaignRow {
  std::uint64_t spec_hash{0};
  std::string protocol;
  SystemParams params;
  std::string backend;
  std::string fault;
  std::uint64_t seed_index{0};
  std::uint64_t seed{0};
  Round rounds{0};
  /// Messages sent by correct processes (the paper's complexity measure).
  std::uint64_t messages{0};
  /// statics::budget_at over the protocol's CommSpec at the worst case
  /// f = t; nullopt when the protocol declares none.
  std::optional<std::uint64_t> static_bound;
  /// Fault-axis campaigns only: the plan's declared actual-fault count and
  /// the static bound evaluated at that f (nullopt static_bound_f when the
  /// protocol declares no CommSpec). Legacy campaigns omit both fields and
  /// their rows stay byte-identical to the pre-fault-axis encoding.
  std::optional<std::uint32_t> f;
  std::optional<std::uint64_t> static_bound_f;
  /// Correct processes that decided.
  std::uint32_t decided{0};
  /// True iff every correct process decided and all decisions are equal.
  bool agree{false};

  friend bool operator==(const CampaignRow&, const CampaignRow&) = default;
};

/// Encodes `row` as one NDJSON line (no trailing newline). The line ends
/// with a "row_hash" field: SipHash-2-4 over the preceding bytes, which is
/// what detects cache poisoning — see decode_row.
[[nodiscard]] std::string encode_row(const CampaignRow& row);

/// Decodes and *authenticates* one NDJSON line: parses the JSON, recomputes
/// the row hash over the line's prefix bytes, re-encodes the decoded fields
/// and requires byte-equality with the input. Returns nullopt for any
/// truncated, corrupted, or non-canonical line — callers treat that as "not
/// cached" and recompute.
[[nodiscard]] std::optional<CampaignRow> decode_row(std::string_view line);

/// Deterministic proposal vector for a task: bit proposals derived from the
/// task seed via SipHash (independent of everything but (seed, n)).
[[nodiscard]] std::vector<Value> derive_proposals(std::uint64_t seed,
                                                  std::uint32_t n);

/// Executes campaign tasks. Resolves each distinct backend spec once and
/// caches static bounds per (protocol, n, t); `run` itself is pure and
/// thread-compatible for distinct TaskRunner instances (shard workers each
/// own one).
class TaskRunner {
 public:
  explicit TaskRunner(const CampaignSpec& spec);

  /// Runs one task and returns its row. The row is a pure function of
  /// (spec, task).
  [[nodiscard]] CampaignRow run(const TaskSpec& task) const;

 private:
  const CampaignSpec& spec_;
  std::map<std::string, engine::BackendHandle> backends_;
  mutable std::map<std::string, std::optional<std::uint64_t>> bound_cache_;
};

/// 16-digit lowercase hex of a 64-bit value (spec/row hashes in rows).
[[nodiscard]] std::string hex16(std::uint64_t v);

}  // namespace ba::service
