#include "service/json.h"

#include <cctype>
#include <charconv>
#include <limits>
#include <cstdio>
#include <stdexcept>

namespace ba::service {
namespace {

[[noreturn]] void fail_at(std::size_t pos, const std::string& what) {
  throw std::runtime_error("json: " + what + " at byte " +
                           std::to_string(pos));
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail_at(pos_, "trailing content");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail_at(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail_at(pos_, std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail_at(pos_, "bad literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail_at(pos_, "bad literal");
      case 'n':
        if (consume_literal("null")) return Json();
        fail_at(pos_, "bad literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json::Object members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(members));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members[std::move(key)] = parse_value();
      skip_ws();
      const char sep = peek();
      if (sep == ',') {
        ++pos_;
        continue;
      }
      if (sep == '}') {
        ++pos_;
        return Json(std::move(members));
      }
      fail_at(pos_, "expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    Json::Array items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_ws();
      const char sep = peek();
      if (sep == ',') {
        ++pos_;
        continue;
      }
      if (sep == ']') {
        ++pos_;
        return Json(std::move(items));
      }
      fail_at(pos_, "expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail_at(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x20) {
          fail_at(pos_ - 1, "raw control character in string");
        }
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail_at(pos_, "unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          // Only the \u00XX range used by our own escaper (control bytes);
          // anything else in the BMP is passed through as raw UTF-8 by spec
          // writers, so reject surrogate gymnastics instead of mis-decoding.
          if (pos_ + 4 > text_.size()) fail_at(pos_, "short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail_at(pos_ - 1, "bad \\u escape digit");
          }
          if (code > 0x7f) fail_at(pos_ - 4, "non-ASCII \\u escape unsupported");
          out.push_back(static_cast<char>(code));
          break;
        }
        default: fail_at(pos_ - 1, "unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool integral = true;
    if (pos_ < text_.size() &&
        (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
              text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail_at(start, "bad number");
    if (integral) {
      std::int64_t value = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc{} && ptr == token.data() + token.size()) {
        return Json(value);
      }
      // Above INT64_MAX: retry unsigned (full-range u64 seeds and hashes).
      if (ec == std::errc::result_out_of_range && token.front() != '-') {
        std::uint64_t uvalue = 0;
        const auto [uptr, uec] = std::from_chars(
            token.data(), token.data() + token.size(), uvalue);
        if (uec == std::errc{} && uptr == token.data() + token.size()) {
          return Json(uvalue);
        }
      }
      fail_at(start, "integer out of range");
    }
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc{} || ptr != token.data() + token.size()) {
      fail_at(start, "bad number");
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_{0};
};

[[noreturn]] void wrong_kind(const char* expected) {
  throw std::runtime_error(std::string("json: value is not ") + expected);
}

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

bool Json::as_bool() const {
  if (kind_ != Kind::kBool) wrong_kind("a bool");
  return bool_;
}

std::int64_t Json::as_int() const {
  if (kind_ == Kind::kUint &&
      uint_ <= static_cast<std::uint64_t>(
                   std::numeric_limits<std::int64_t>::max())) {
    return static_cast<std::int64_t>(uint_);
  }
  if (kind_ != Kind::kInt) wrong_kind("an integer");
  return int_;
}

std::uint64_t Json::as_uint() const {
  if (kind_ == Kind::kUint) return uint_;
  if (kind_ != Kind::kInt || int_ < 0) wrong_kind("an unsigned integer");
  return static_cast<std::uint64_t>(int_);
}

double Json::as_double() const {
  if (kind_ == Kind::kInt) return static_cast<double>(int_);
  if (kind_ == Kind::kUint) return static_cast<double>(uint_);
  if (kind_ != Kind::kDouble) wrong_kind("a number");
  return double_;
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString) wrong_kind("a string");
  return string_;
}

const Json::Array& Json::as_array() const {
  if (kind_ != Kind::kArray) wrong_kind("an array");
  return array_;
}

const Json::Object& Json::as_object() const {
  if (kind_ != Kind::kObject) wrong_kind("an object");
  return object_;
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

void json_escape_to(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
}

}  // namespace ba::service
