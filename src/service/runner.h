#pragma once

// The campaign coordinator behind `ba_cli serve`: shards a CampaignSpec's
// task list across worker *processes*, streams their NDJSON rows to disk,
// and merges the shards into a single results file that is byte-identical
// to a single-shot serial run — even when workers are killed and the
// campaign is resumed (tools/serve_resume_test.cmake pins this).
//
// How the guarantee is built:
//   1. The task list is a pure function of the spec (campaign.h), so every
//      expansion — any shard count, any resume — agrees on task_at(i).
//   2. Rows are pure functions of (spec, task) and carry no worker
//      identity or wall-clock fields, so who computed a row (and when)
//      leaves no trace in its bytes.
//   3. Completed rows are content-addressed by the task's spec hash and
//      folded from cache.ndjson plus any leftover shard files on startup;
//      only the *pending* tasks are leased out. A corrupted cache line
//      fails decode_row's authentication and is simply recomputed.
//   4. The merge walks task indices 0..count-1 and emits each task's row —
//      shard boundaries and completion order cannot reorder it.
//
// Fault handling: each worker bumps a heartbeat file per row. The
// coordinator polls worker exits (waitpid) and heartbeats; a worker that
// exits nonzero, dies by signal, or goes heartbeat-stale is SIGKILLed and
// its lease reclaimed — completed rows are kept (they are in the shard
// file), the remainder is re-leased to a fresh worker, up to
// ServeOptions::max_respawns per campaign. When the respawn budget is
// exhausted the campaign aborts with the state directory intact; rerunning
// `ba_cli serve` with the same spec resumes where it stopped.

#include <cstdint>
#include <string>

#include "service/campaign.h"

namespace ba::service {

struct ServeOptions {
  /// Campaign state directory (created if missing). Holds the layout
  /// documented in service/worker.h.
  std::string state_dir;
  /// Worker processes to shard across (clamped to the pending task count).
  std::uint32_t workers{2};
  /// Dead-worker respawn budget for the whole campaign; when exhausted the
  /// campaign throws, leaving the state directory resumable.
  std::uint32_t respawn_budget{2};
  /// Milliseconds without heartbeat progress before a worker is declared
  /// dead and SIGKILLed. Control-plane only: affects who computes rows,
  /// never their bytes.
  std::uint32_t heartbeat_stale_ms{30000};
  /// Coordinator poll interval, milliseconds.
  std::uint32_t poll_ms{25};
  /// Executable to spawn workers from; empty = /proc/self/exe. The
  /// executable must dispatch `serve-worker --state DIR --shard N` to
  /// run_shard_worker (ba_cli does).
  std::string worker_exe;
  /// Test hook, forwarded to first-generation workers only: each dies
  /// (SIGKILL) after this many rows. Respawned workers run without it so
  /// reclaim converges. 0 disables.
  std::uint64_t die_after{0};
  /// Suppress progress lines on stderr.
  bool quiet{false};
};

struct ServeSummary {
  std::uint64_t tasks_total{0};
  /// Tasks satisfied from cache/shard files at startup (resume hits).
  std::uint64_t tasks_cached{0};
  /// Tasks executed by workers in this invocation.
  std::uint64_t tasks_run{0};
  /// Cache/shard lines rejected by decode_row authentication (corrupted or
  /// foreign); their tasks were recomputed.
  std::uint64_t rows_rejected{0};
  std::uint32_t workers_used{0};
  std::uint32_t respawns{0};
  /// Wall-clock duration of this invocation, microseconds (reporting only;
  /// never written into result rows).
  std::uint64_t wall_micros{0};
  std::string results_file;
};

/// Runs (or resumes) a sharded campaign to completion and writes the merged
/// results.ndjson. Throws std::runtime_error on spec mismatch with an
/// existing state directory, on an exhausted respawn budget, or on any
/// filesystem failure — in every case the state directory remains valid to
/// resume from.
ServeSummary serve_campaign(const CampaignSpec& spec,
                            const ServeOptions& options);

/// The single-shot serial reference: runs every task in index order in this
/// process, streaming rows to `out_path`. No state directory, no cache.
/// serve_campaign's results.ndjson is byte-identical to this output.
ServeSummary run_campaign_serial(const CampaignSpec& spec,
                                 const std::string& out_path);

/// Renders a BENCH_service.json document (schema consumed by
/// tools/check_bench_regression.py) from a completed campaign's summary.
[[nodiscard]] std::string bench_service_json(const CampaignSpec& spec,
                                             const ServeSummary& summary);

}  // namespace ba::service
