#include "service/ndjson.h"

#include <stdexcept>

namespace ba::service {

NdjsonFileWriter::NdjsonFileWriter(const std::string& path, bool truncate)
    : path_(path),
      out_(path, truncate ? std::ios::out | std::ios::trunc
                          : std::ios::out | std::ios::app) {
  if (!out_) {
    throw std::runtime_error("ndjson: cannot open " + path + " for writing");
  }
}

void NdjsonFileWriter::write_line(std::string_view line) {
  out_.write(line.data(), static_cast<std::streamsize>(line.size()));
  out_.put('\n');
  out_.flush();
  if (!out_) {
    throw std::runtime_error("ndjson: write failed on " + path_);
  }
  ++lines_;
}

void OrderedNdjsonWriter::put(std::uint64_t index, std::string line) {
  if (index < next_ || pending_.contains(index)) {
    throw std::runtime_error("ordered ndjson: duplicate index " +
                             std::to_string(index));
  }
  pending_.emplace(index, std::move(line));
  while (!pending_.empty() && pending_.begin()->first == next_) {
    sink_(pending_.begin()->second);
    pending_.erase(pending_.begin());
    ++next_;
  }
}

std::vector<std::string> read_ndjson_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  if (!in) return lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

}  // namespace ba::service
