#include "service/campaign.h"

#include <algorithm>
#include <charconv>
#include <limits>
#include <stdexcept>

#include "crypto/siphash.h"
#include "engine/registry.h"
#include "faults/compile.h"
#include "faults/fault_spec.h"
#include "parallel/seed.h"
#include "protocols/comm_specs.h"
#include "protocols/registry.h"
#include "service/json.h"
#include "statics/analyzer.h"

namespace ba::service {
namespace {

// Fixed domain-separated keys: spec hashes and row hashes must be stable
// across builds and machines (they are written into cache files).
constexpr crypto::SipKey kSpecHashKey{0x5e27c0de9a7b0001ULL,
                                      0xba5eba11ca3d0002ULL};
constexpr crypto::SipKey kRowHashKey{0x5e27c0de9a7b0003ULL,
                                     0xba5eba11ca3d0004ULL};
constexpr std::uint64_t kProposalContext = 0x9a0b0535ULL;

[[noreturn]] void spec_error(const std::string& what) {
  throw std::runtime_error("campaign: " + what);
}

std::uint64_t hash_bytes(const crypto::SipKey& key, std::string_view bytes) {
  return crypto::siphash24(
      key, {reinterpret_cast<const std::uint8_t*>(bytes.data()),
            bytes.size()});
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, static_cast<std::size_t>(ptr - buf));
}

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

SystemParams parse_grid_point(const Json& point) {
  if (point.is_string()) {
    const std::string& s = point.as_string();
    const auto colon = s.find(':');
    if (colon != std::string::npos) {
      const auto n = parse_u64(std::string_view(s).substr(0, colon));
      const auto t = parse_u64(std::string_view(s).substr(colon + 1));
      if (n && t && SystemParams{static_cast<std::uint32_t>(*n),
                                 static_cast<std::uint32_t>(*t)}
                        .valid()) {
        return {static_cast<std::uint32_t>(*n), static_cast<std::uint32_t>(*t)};
      }
    }
    spec_error("grid point '" + s + "': want \"n:t\" with t < n");
  }
  const Json* n = point.find("n");
  const Json* t = point.find("t");
  if (!n || !t || !n->is_int() || !t->is_int()) {
    spec_error("grid point: want \"n:t\" or {\"n\": .., \"t\": ..}");
  }
  SystemParams params{static_cast<std::uint32_t>(n->as_int()),
                      static_cast<std::uint32_t>(t->as_int())};
  if (n->as_int() < 0 || t->as_int() < 0 || !params.valid()) {
    spec_error("grid point: invalid (n, t)");
  }
  return params;
}

std::vector<std::string> parse_string_array(const Json& v, const char* field) {
  std::vector<std::string> out;
  if (!v.is_array()) spec_error(std::string(field) + ": want an array");
  for (const Json& item : v.as_array()) {
    if (!item.is_string()) {
      spec_error(std::string(field) + ": want an array of strings");
    }
    out.push_back(item.as_string());
  }
  return out;
}

}  // namespace

std::string hex16(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

CampaignSpec CampaignSpec::from_json(std::string_view text) {
  const Json doc = Json::parse(text);
  if (!doc.is_object()) spec_error("top level: want an object");
  CampaignSpec spec;
  spec.backends.clear();
  spec.faults.clear();
  bool saw_faults = false;
  for (const auto& [key, value] : doc.as_object()) {
    if (key == "name") {
      spec.name = value.as_string();
    } else if (key == "master_seed") {
      if (!value.is_integer() || (value.is_int() && value.as_int() < 0)) {
        spec_error("master_seed: want a non-negative integer");
      }
      spec.master_seed = value.as_uint();
    } else if (key == "protocols") {
      spec.protocols = parse_string_array(value, "protocols");
    } else if (key == "grid") {
      if (!value.is_array()) spec_error("grid: want an array");
      for (const Json& point : value.as_array()) {
        spec.grid.push_back(parse_grid_point(point));
      }
    } else if (key == "backends") {
      spec.backends = parse_string_array(value, "backends");
    } else if (key == "faults") {
      spec.faults = parse_string_array(value, "faults");
      saw_faults = true;
    } else if (key == "fault_axis") {
      spec.fault_axis = parse_string_array(value, "fault_axis");
    } else if (key == "fault_counts") {
      if (!value.is_array()) spec_error("fault_counts: want an array");
      for (const Json& item : value.as_array()) {
        if (!item.is_int() || item.as_int() < 0) {
          spec_error("fault_counts: want non-negative integers");
        }
        spec.fault_counts.push_back(
            static_cast<std::uint32_t>(item.as_int()));
      }
    } else if (key == "seeds") {
      if (!value.is_int() || value.as_int() <= 0) {
        spec_error("seeds: want a positive integer");
      }
      spec.seeds = static_cast<std::uint64_t>(value.as_int());
    } else {
      spec_error("unknown field '" + key + "'");
    }
  }
  if (spec.backends.empty()) spec.backends.push_back("lockstep");
  if (saw_faults && !spec.fault_axis.empty()) {
    spec_error("faults and fault_axis are mutually exclusive");
  }
  if (spec.faults.empty() && spec.fault_axis.empty()) {
    spec.faults.push_back("fault-free");
  }
  spec.validate();
  return spec;
}

std::string CampaignSpec::to_json() const {
  std::string out = "{\"name\":\"";
  json_escape_to(out, name);
  out += "\",\"master_seed\":";
  append_u64(out, master_seed);
  out += ",\"protocols\":[";
  for (std::size_t i = 0; i < protocols.size(); ++i) {
    out += i ? ",\"" : "\"";
    json_escape_to(out, protocols[i]);
    out += "\"";
  }
  out += "],\"grid\":[";
  for (std::size_t i = 0; i < grid.size(); ++i) {
    out += i ? ",\"" : "\"";
    append_u64(out, grid[i].n);
    out += ":";
    append_u64(out, grid[i].t);
    out += "\"";
  }
  out += "],\"backends\":[";
  for (std::size_t i = 0; i < backends.size(); ++i) {
    out += i ? ",\"" : "\"";
    json_escape_to(out, backends[i]);
    out += "\"";
  }
  out += "]";
  // Axis campaigns omit the faults field entirely; an empty "faults":[]
  // would read back as an explicit (conflicting) fault list.
  if (!faults.empty()) {
    out += ",\"faults\":[";
    for (std::size_t i = 0; i < faults.size(); ++i) {
      out += i ? ",\"" : "\"";
      json_escape_to(out, faults[i]);
      out += "\"";
    }
    out += "]";
  }
  // Legacy campaigns canonicalize to the exact pre-fault-axis bytes, so
  // resumable state directories written before the axis existed still match.
  if (!fault_axis.empty()) {
    out += ",\"fault_axis\":[";
    for (std::size_t i = 0; i < fault_axis.size(); ++i) {
      out += i ? ",\"" : "\"";
      json_escape_to(out, fault_axis[i]);
      out += "\"";
    }
    out += "]";
  }
  if (!fault_counts.empty()) {
    out += ",\"fault_counts\":[";
    for (std::size_t i = 0; i < fault_counts.size(); ++i) {
      if (i) out += ",";
      append_u64(out, fault_counts[i]);
    }
    out += "]";
  }
  out += ",\"seeds\":";
  append_u64(out, seeds);
  out += "}";
  return out;
}

std::vector<std::string> CampaignSpec::effective_faults() const {
  if (fault_axis.empty()) return faults;
  std::vector<std::uint32_t> counts = fault_counts;
  if (counts.empty()) {
    // Default sweep: every f the whole grid can afford, 0..min t.
    std::uint32_t min_t = std::numeric_limits<std::uint32_t>::max();
    for (const SystemParams& params : grid) min_t = std::min(min_t, params.t);
    if (grid.empty()) min_t = 0;
    counts.reserve(min_t + 1);
    for (std::uint32_t f = 0; f <= min_t; ++f) counts.push_back(f);
  }
  std::vector<std::string> out;
  out.reserve(fault_axis.size() * counts.size());
  for (const std::string& kind : fault_axis) {
    for (const std::uint32_t f : counts) {
      std::string fault = kind;
      fault += ':';
      append_u64(fault, f);
      out.push_back(std::move(fault));
    }
  }
  return out;
}

void CampaignSpec::validate() const {
  if (protocols.empty()) spec_error("protocols: empty");
  if (grid.empty()) spec_error("grid: empty");
  if (backends.empty()) spec_error("backends: empty");
  if (faults.empty() && fault_axis.empty()) spec_error("faults: empty");
  if (!faults.empty() && !fault_axis.empty()) {
    spec_error("faults and fault_axis are mutually exclusive");
  }
  if (!fault_counts.empty() && fault_axis.empty()) {
    spec_error("fault_counts: requires fault_axis");
  }
  if (seeds == 0) spec_error("seeds: must be >= 1");
  for (const SystemParams& params : grid) {
    if (!params.valid()) spec_error("grid: invalid (n, t) point");
  }
  for (const std::string& protocol : protocols) {
    if (!protocols::make_protocol_by_name(protocol, grid.front().n)) {
      spec_error("unknown protocol '" + protocol + "' (known: " +
                 protocols::registered_protocol_names() + ")");
    }
  }
  for (const std::string& backend : backends) {
    const auto parsed = engine::parse_backend_spec(backend);
    if (!parsed) {
      spec_error("backend '" + backend +
                 "': malformed spec (want name[:model[,seed]])");
    }
    if (parsed->name == "async") {
      spec_error("backend '" + backend +
                 "': the async backend refuses synchronous protocols; "
                 "campaigns run the synchronous surface");
    }
    try {
      (void)engine::Registry::global().make(*parsed);
    } catch (const std::exception& e) {
      spec_error("backend '" + backend + "': " + e.what());
    }
  }
  for (const std::string& kind : fault_axis) {
    const auto resolved = faults::find_fault_kind(kind);
    if (!resolved || !faults::kind_sweepable(*resolved)) {
      spec_error("fault_axis kind '" + kind +
                 "': want a sweepable fault kind (crash mute isolate "
                 "silent-byz noise-byz)");
    }
  }
  // Unknown or over-budget fault plans throw the pinned faults:: message
  // unwrapped — the same string `ba_cli run/sim/sweep` print.
  const std::vector<std::string> fault_plans = effective_faults();
  for (const std::string& fault : fault_plans) {
    for (const SystemParams& params : grid) {
      (void)faults::checked_fault_spec(fault, params);
    }
  }
  // Overflow guard on the cross product (campaigns are large but bounded).
  std::uint64_t count = seeds;
  for (const std::uint64_t axis : {protocols.size(), grid.size(),
                                   backends.size(), fault_plans.size()}) {
    if (axis != 0 && count > UINT64_MAX / axis) {
      spec_error("task count overflows 64 bits");
    }
    count *= axis;
  }
}

std::uint64_t CampaignSpec::task_count() const {
  return protocols.size() * grid.size() * backends.size() *
         effective_faults().size() * seeds;
}

TaskSpec CampaignSpec::task_at(std::uint64_t index) const {
  if (index >= task_count()) {
    spec_error("task index " + std::to_string(index) + " out of range (" +
               std::to_string(task_count()) + " tasks)");
  }
  TaskSpec task;
  task.index = index;
  const std::vector<std::string> fault_plans = effective_faults();
  std::uint64_t rest = index;
  task.seed_index = rest % seeds;
  rest /= seeds;
  task.fault = fault_plans[rest % fault_plans.size()];
  rest /= fault_plans.size();
  task.backend = backends[rest % backends.size()];
  rest /= backends.size();
  task.params = grid[rest % grid.size()];
  rest /= grid.size();
  task.protocol = protocols[rest];
  task.seed = parallel::derive_task_seed(master_seed, index);
  return task;
}

std::string canonical_task_encoding(const CampaignSpec& spec,
                                    const TaskSpec& task) {
  std::string out = "ba-campaign-task-v1|master=";
  append_u64(out, spec.master_seed);
  out += "|protocol=" + task.protocol + "|n=";
  append_u64(out, task.params.n);
  out += "|t=";
  append_u64(out, task.params.t);
  out += "|backend=" + task.backend + "|fault=" + task.fault + "|seed_index=";
  append_u64(out, task.seed_index);
  out += "|seed=";
  append_u64(out, task.seed);
  return out;
}

std::uint64_t task_spec_hash(const CampaignSpec& spec, const TaskSpec& task) {
  return hash_bytes(kSpecHashKey, canonical_task_encoding(spec, task));
}

std::string encode_row(const CampaignRow& row) {
  std::string out = "{\"spec\":\"" + hex16(row.spec_hash) +
                    "\",\"protocol\":\"";
  json_escape_to(out, row.protocol);
  out += "\",\"n\":";
  append_u64(out, row.params.n);
  out += ",\"t\":";
  append_u64(out, row.params.t);
  out += ",\"backend\":\"";
  json_escape_to(out, row.backend);
  out += "\",\"fault\":\"";
  json_escape_to(out, row.fault);
  out += "\",\"seed_index\":";
  append_u64(out, row.seed_index);
  out += ",\"seed\":";
  append_u64(out, row.seed);
  out += ",\"rounds\":";
  append_u64(out, row.rounds);
  out += ",\"messages\":";
  append_u64(out, row.messages);
  out += ",\"static_bound\":";
  if (row.static_bound) {
    append_u64(out, *row.static_bound);
  } else {
    out += "null";
  }
  // Fault-axis campaigns carry the per-f columns; legacy rows omit them and
  // keep their pre-fault-axis bytes (resumable caches stay valid).
  if (row.f) {
    out += ",\"f\":";
    append_u64(out, *row.f);
    out += ",\"static_bound_f\":";
    if (row.static_bound_f) {
      append_u64(out, *row.static_bound_f);
    } else {
      out += "null";
    }
  }
  out += ",\"decided\":";
  append_u64(out, row.decided);
  out += row.agree ? ",\"agree\":true" : ",\"agree\":false";
  // The row hash covers every byte emitted so far — any field mutation in a
  // cached line flips it.
  out += ",\"row_hash\":\"" + hex16(hash_bytes(kRowHashKey, out)) + "\"}";
  return out;
}

std::optional<CampaignRow> decode_row(std::string_view line) {
  static constexpr std::string_view kHashField = ",\"row_hash\":\"";
  const auto hash_pos = line.rfind(kHashField);
  if (hash_pos == std::string_view::npos) return std::nullopt;
  const std::string_view prefix = line.substr(0, hash_pos);
  const std::string_view tail = line.substr(hash_pos + kHashField.size());
  if (tail.size() != 18 || tail.substr(16) != "\"}") return std::nullopt;
  if (hex16(hash_bytes(kRowHashKey, prefix)) != tail.substr(0, 16)) {
    return std::nullopt;
  }
  CampaignRow row;
  try {
    const Json doc = Json::parse(line);
    const Json* spec = doc.find("spec");
    if (!spec) return std::nullopt;
    const auto spec_hash = [&]() -> std::optional<std::uint64_t> {
      const std::string& hex = spec->as_string();
      if (hex.size() != 16) return std::nullopt;
      std::uint64_t v = 0;
      const auto [ptr, ec] =
          std::from_chars(hex.data(), hex.data() + 16, v, 16);
      if (ec != std::errc{} || ptr != hex.data() + 16) return std::nullopt;
      return v;
    }();
    if (!spec_hash) return std::nullopt;
    row.spec_hash = *spec_hash;
    const Json* field = nullptr;
    if (!(field = doc.find("protocol"))) return std::nullopt;
    row.protocol = field->as_string();
    if (!(field = doc.find("n"))) return std::nullopt;
    row.params.n = static_cast<std::uint32_t>(field->as_int());
    if (!(field = doc.find("t"))) return std::nullopt;
    row.params.t = static_cast<std::uint32_t>(field->as_int());
    if (!(field = doc.find("backend"))) return std::nullopt;
    row.backend = field->as_string();
    if (!(field = doc.find("fault"))) return std::nullopt;
    row.fault = field->as_string();
    if (!(field = doc.find("seed_index"))) return std::nullopt;
    row.seed_index = field->as_uint();
    if (!(field = doc.find("seed"))) return std::nullopt;
    row.seed = field->as_uint();
    if (!(field = doc.find("rounds"))) return std::nullopt;
    row.rounds = static_cast<Round>(field->as_uint());
    if (!(field = doc.find("messages"))) return std::nullopt;
    row.messages = field->as_uint();
    if (!(field = doc.find("static_bound"))) return std::nullopt;
    if (!field->is_null()) {
      row.static_bound = field->as_uint();
    }
    if ((field = doc.find("f"))) {
      row.f = static_cast<std::uint32_t>(field->as_int());
      const Json* bound_f = doc.find("static_bound_f");
      if (!bound_f) return std::nullopt;
      if (!bound_f->is_null()) {
        row.static_bound_f = bound_f->as_uint();
      }
    }
    if (!(field = doc.find("decided"))) return std::nullopt;
    row.decided = static_cast<std::uint32_t>(field->as_int());
    if (!(field = doc.find("agree"))) return std::nullopt;
    row.agree = field->as_bool();
  } catch (const std::exception&) {
    return std::nullopt;
  }
  // Canonical-form check: a line that decodes but would not re-encode to
  // the same bytes (reordered fields, whitespace, extra fields) is rejected
  // — the merge step may only ever emit canonical bytes.
  if (encode_row(row) != line) return std::nullopt;
  return row;
}

std::vector<Value> derive_proposals(std::uint64_t seed, std::uint32_t n) {
  const crypto::SipKey key = crypto::derive_key(seed, kProposalContext);
  const crypto::SipHasher base(key);
  std::vector<Value> proposals;
  proposals.reserve(n);
  for (std::uint32_t p = 0; p < n; ++p) {
    crypto::SipHasher h = base;
    h.absorb_u32(p);
    proposals.push_back(Value::bit(static_cast<int>(h.digest() & 1)));
  }
  return proposals;
}

TaskRunner::TaskRunner(const CampaignSpec& spec) : spec_(spec) {
  for (const std::string& backend : spec.backends) {
    if (backends_.contains(backend)) continue;
    const auto parsed = engine::parse_backend_spec(backend);
    if (!parsed) {
      spec_error("backend '" + backend + "': malformed spec");
    }
    backends_.emplace(backend, engine::Registry::global().make(*parsed));
  }
}

CampaignRow TaskRunner::run(const TaskSpec& task) const {
  const auto backend = backends_.find(task.backend);
  if (backend == backends_.end()) {
    spec_error("task backend '" + task.backend + "' not in campaign spec");
  }
  const auto factory =
      protocols::make_protocol_by_name(task.protocol, task.params.n);
  if (!factory) spec_error("unknown protocol '" + task.protocol + "'");

  const std::vector<Value> proposals =
      derive_proposals(task.seed, task.params.n);
  const faults::FaultSpec fault_spec =
      faults::checked_fault_spec(task.fault, task.params);
  const Adversary adversary =
      faults::compile_adversary(fault_spec, task.params, task.seed);

  RunOptions options;
  options.record_trace = false;  // streaming campaigns never keep traces

  const RunResult res = backend->second->run(task.params, *factory, proposals,
                                             adversary, options);

  CampaignRow row;
  row.spec_hash = task_spec_hash(spec_, task);
  row.protocol = task.protocol;
  row.params = task.params;
  row.backend = task.backend;
  row.fault = task.fault;
  row.seed_index = task.seed_index;
  row.seed = task.seed;
  row.rounds = res.rounds_executed;
  row.messages = res.messages_sent_by_correct;

  // Cached per (protocol, n, t, f): the worst-case bound (f = t) plus, for
  // fault-axis campaigns, the bound at the plan's declared fault count.
  const auto bound_at = [&](std::uint32_t f) -> std::optional<std::uint64_t> {
    std::string bound_key = task.protocol + "|";
    append_u64(bound_key, task.params.n);
    bound_key += "|";
    append_u64(bound_key, task.params.t);
    bound_key += "|";
    append_u64(bound_key, f);
    const auto cached = bound_cache_.find(bound_key);
    if (cached != bound_cache_.end()) return cached->second;
    std::optional<std::uint64_t> bound;
    if (const statics::CommSpec* comm =
            protocols::find_comm_spec(task.protocol)) {
      bound =
          statics::budget_at(statics::analyze(*comm), task.params, f).messages;
    }
    bound_cache_.emplace(std::move(bound_key), bound);
    return bound;
  };
  row.static_bound = bound_at(task.params.t);
  if (spec_.has_fault_axis()) {
    row.f = fault_spec.declared_faults(task.params);
    row.static_bound_f = bound_at(*row.f);
  }

  std::optional<Value> decision;
  bool agree = true;
  std::uint32_t correct = 0;
  for (ProcessId p = 0; p < task.params.n; ++p) {
    if (adversary.is_faulty(p)) continue;
    ++correct;
    if (!res.decisions[p]) {
      agree = false;
      continue;
    }
    ++row.decided;
    if (!decision) {
      decision = *res.decisions[p];
    } else if (!(*decision == *res.decisions[p])) {
      agree = false;
    }
  }
  row.agree = agree && row.decided == correct && correct > 0;
  return row;
}

}  // namespace ba::service
