#include "service/campaign.h"

#include <charconv>
#include <stdexcept>

#include "adversary/byzantine.h"
#include "adversary/omission.h"
#include "crypto/siphash.h"
#include "engine/registry.h"
#include "parallel/seed.h"
#include "protocols/comm_specs.h"
#include "protocols/registry.h"
#include "service/json.h"
#include "statics/analyzer.h"

namespace ba::service {
namespace {

// Fixed domain-separated keys: spec hashes and row hashes must be stable
// across builds and machines (they are written into cache files).
constexpr crypto::SipKey kSpecHashKey{0x5e27c0de9a7b0001ULL,
                                      0xba5eba11ca3d0002ULL};
constexpr crypto::SipKey kRowHashKey{0x5e27c0de9a7b0003ULL,
                                     0xba5eba11ca3d0004ULL};
constexpr std::uint64_t kProposalContext = 0x9a0b0535ULL;
constexpr std::uint64_t kFaultContext = 0xfa017ab1ULL;

[[noreturn]] void spec_error(const std::string& what) {
  throw std::runtime_error("campaign: " + what);
}

std::uint64_t hash_bytes(const crypto::SipKey& key, std::string_view bytes) {
  return crypto::siphash24(
      key, {reinterpret_cast<const std::uint8_t*>(bytes.data()),
            bytes.size()});
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, static_cast<std::size_t>(ptr - buf));
}

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

/// Splits "name" or "name:arg" fault syntax.
std::pair<std::string, std::optional<std::uint64_t>> split_fault(
    const std::string& fault) {
  const auto colon = fault.find(':');
  if (colon == std::string::npos) return {fault, std::nullopt};
  const auto arg = parse_u64(std::string_view(fault).substr(colon + 1));
  if (!arg) spec_error("fault plan '" + fault + "': malformed argument");
  return {fault.substr(0, colon), arg};
}

/// The K highest process ids — the conventional corrupted suffix.
ProcessSet tail_group(const SystemParams& params, std::uint32_t k) {
  return ProcessSet::range(params.n - k, params.n);
}

std::uint32_t checked_budget(const std::string& fault,
                             const SystemParams& params,
                             std::uint64_t k_raw) {
  if (k_raw > params.t) {
    spec_error("fault plan '" + fault + "': " + std::to_string(k_raw) +
               " faults exceed budget t=" + std::to_string(params.t));
  }
  return static_cast<std::uint32_t>(k_raw);
}

SystemParams parse_grid_point(const Json& point) {
  if (point.is_string()) {
    const std::string& s = point.as_string();
    const auto colon = s.find(':');
    if (colon != std::string::npos) {
      const auto n = parse_u64(std::string_view(s).substr(0, colon));
      const auto t = parse_u64(std::string_view(s).substr(colon + 1));
      if (n && t && SystemParams{static_cast<std::uint32_t>(*n),
                                 static_cast<std::uint32_t>(*t)}
                        .valid()) {
        return {static_cast<std::uint32_t>(*n), static_cast<std::uint32_t>(*t)};
      }
    }
    spec_error("grid point '" + s + "': want \"n:t\" with t < n");
  }
  const Json* n = point.find("n");
  const Json* t = point.find("t");
  if (!n || !t || !n->is_int() || !t->is_int()) {
    spec_error("grid point: want \"n:t\" or {\"n\": .., \"t\": ..}");
  }
  SystemParams params{static_cast<std::uint32_t>(n->as_int()),
                      static_cast<std::uint32_t>(t->as_int())};
  if (n->as_int() < 0 || t->as_int() < 0 || !params.valid()) {
    spec_error("grid point: invalid (n, t)");
  }
  return params;
}

std::vector<std::string> parse_string_array(const Json& v, const char* field) {
  std::vector<std::string> out;
  if (!v.is_array()) spec_error(std::string(field) + ": want an array");
  for (const Json& item : v.as_array()) {
    if (!item.is_string()) {
      spec_error(std::string(field) + ": want an array of strings");
    }
    out.push_back(item.as_string());
  }
  return out;
}

}  // namespace

std::string hex16(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

CampaignSpec CampaignSpec::from_json(std::string_view text) {
  const Json doc = Json::parse(text);
  if (!doc.is_object()) spec_error("top level: want an object");
  CampaignSpec spec;
  spec.backends.clear();
  spec.faults.clear();
  for (const auto& [key, value] : doc.as_object()) {
    if (key == "name") {
      spec.name = value.as_string();
    } else if (key == "master_seed") {
      if (!value.is_integer() || (value.is_int() && value.as_int() < 0)) {
        spec_error("master_seed: want a non-negative integer");
      }
      spec.master_seed = value.as_uint();
    } else if (key == "protocols") {
      spec.protocols = parse_string_array(value, "protocols");
    } else if (key == "grid") {
      if (!value.is_array()) spec_error("grid: want an array");
      for (const Json& point : value.as_array()) {
        spec.grid.push_back(parse_grid_point(point));
      }
    } else if (key == "backends") {
      spec.backends = parse_string_array(value, "backends");
    } else if (key == "faults") {
      spec.faults = parse_string_array(value, "faults");
    } else if (key == "seeds") {
      if (!value.is_int() || value.as_int() <= 0) {
        spec_error("seeds: want a positive integer");
      }
      spec.seeds = static_cast<std::uint64_t>(value.as_int());
    } else {
      spec_error("unknown field '" + key + "'");
    }
  }
  if (spec.backends.empty()) spec.backends.push_back("lockstep");
  if (spec.faults.empty()) spec.faults.push_back("fault-free");
  spec.validate();
  return spec;
}

std::string CampaignSpec::to_json() const {
  std::string out = "{\"name\":\"";
  json_escape_to(out, name);
  out += "\",\"master_seed\":";
  append_u64(out, master_seed);
  out += ",\"protocols\":[";
  for (std::size_t i = 0; i < protocols.size(); ++i) {
    out += i ? ",\"" : "\"";
    json_escape_to(out, protocols[i]);
    out += "\"";
  }
  out += "],\"grid\":[";
  for (std::size_t i = 0; i < grid.size(); ++i) {
    out += i ? ",\"" : "\"";
    append_u64(out, grid[i].n);
    out += ":";
    append_u64(out, grid[i].t);
    out += "\"";
  }
  out += "],\"backends\":[";
  for (std::size_t i = 0; i < backends.size(); ++i) {
    out += i ? ",\"" : "\"";
    json_escape_to(out, backends[i]);
    out += "\"";
  }
  out += "],\"faults\":[";
  for (std::size_t i = 0; i < faults.size(); ++i) {
    out += i ? ",\"" : "\"";
    json_escape_to(out, faults[i]);
    out += "\"";
  }
  out += "],\"seeds\":";
  append_u64(out, seeds);
  out += "}";
  return out;
}

void CampaignSpec::validate() const {
  if (protocols.empty()) spec_error("protocols: empty");
  if (grid.empty()) spec_error("grid: empty");
  if (backends.empty()) spec_error("backends: empty");
  if (faults.empty()) spec_error("faults: empty");
  if (seeds == 0) spec_error("seeds: must be >= 1");
  for (const SystemParams& params : grid) {
    if (!params.valid()) spec_error("grid: invalid (n, t) point");
  }
  for (const std::string& protocol : protocols) {
    if (!protocols::make_protocol_by_name(protocol, grid.front().n)) {
      spec_error("unknown protocol '" + protocol + "' (known: " +
                 protocols::registered_protocol_names() + ")");
    }
  }
  for (const std::string& backend : backends) {
    const auto parsed = engine::parse_backend_spec(backend);
    if (!parsed) {
      spec_error("backend '" + backend +
                 "': malformed spec (want name[:model[,seed]])");
    }
    if (parsed->name == "async") {
      spec_error("backend '" + backend +
                 "': the async backend refuses synchronous protocols; "
                 "campaigns run the synchronous surface");
    }
    try {
      (void)engine::Registry::global().make(*parsed);
    } catch (const std::exception& e) {
      spec_error("backend '" + backend + "': " + e.what());
    }
  }
  for (const std::string& fault : faults) {
    for (const SystemParams& params : grid) {
      (void)make_fault_adversary(fault, params, 0);  // throws when invalid
    }
  }
  // Overflow guard on the cross product (campaigns are large but bounded).
  std::uint64_t count = seeds;
  for (const std::uint64_t axis :
       {protocols.size(), grid.size(), backends.size(), faults.size()}) {
    if (axis != 0 && count > UINT64_MAX / axis) {
      spec_error("task count overflows 64 bits");
    }
    count *= axis;
  }
}

std::uint64_t CampaignSpec::task_count() const {
  return protocols.size() * grid.size() * backends.size() * faults.size() *
         seeds;
}

TaskSpec CampaignSpec::task_at(std::uint64_t index) const {
  if (index >= task_count()) {
    spec_error("task index " + std::to_string(index) + " out of range (" +
               std::to_string(task_count()) + " tasks)");
  }
  TaskSpec task;
  task.index = index;
  std::uint64_t rest = index;
  task.seed_index = rest % seeds;
  rest /= seeds;
  task.fault = faults[rest % faults.size()];
  rest /= faults.size();
  task.backend = backends[rest % backends.size()];
  rest /= backends.size();
  task.params = grid[rest % grid.size()];
  rest /= grid.size();
  task.protocol = protocols[rest];
  task.seed = parallel::derive_task_seed(master_seed, index);
  return task;
}

std::string canonical_task_encoding(const CampaignSpec& spec,
                                    const TaskSpec& task) {
  std::string out = "ba-campaign-task-v1|master=";
  append_u64(out, spec.master_seed);
  out += "|protocol=" + task.protocol + "|n=";
  append_u64(out, task.params.n);
  out += "|t=";
  append_u64(out, task.params.t);
  out += "|backend=" + task.backend + "|fault=" + task.fault + "|seed_index=";
  append_u64(out, task.seed_index);
  out += "|seed=";
  append_u64(out, task.seed);
  return out;
}

std::uint64_t task_spec_hash(const CampaignSpec& spec, const TaskSpec& task) {
  return hash_bytes(kSpecHashKey, canonical_task_encoding(spec, task));
}

std::string encode_row(const CampaignRow& row) {
  std::string out = "{\"spec\":\"" + hex16(row.spec_hash) +
                    "\",\"protocol\":\"";
  json_escape_to(out, row.protocol);
  out += "\",\"n\":";
  append_u64(out, row.params.n);
  out += ",\"t\":";
  append_u64(out, row.params.t);
  out += ",\"backend\":\"";
  json_escape_to(out, row.backend);
  out += "\",\"fault\":\"";
  json_escape_to(out, row.fault);
  out += "\",\"seed_index\":";
  append_u64(out, row.seed_index);
  out += ",\"seed\":";
  append_u64(out, row.seed);
  out += ",\"rounds\":";
  append_u64(out, row.rounds);
  out += ",\"messages\":";
  append_u64(out, row.messages);
  out += ",\"static_bound\":";
  if (row.static_bound) {
    append_u64(out, *row.static_bound);
  } else {
    out += "null";
  }
  out += ",\"decided\":";
  append_u64(out, row.decided);
  out += row.agree ? ",\"agree\":true" : ",\"agree\":false";
  // The row hash covers every byte emitted so far — any field mutation in a
  // cached line flips it.
  out += ",\"row_hash\":\"" + hex16(hash_bytes(kRowHashKey, out)) + "\"}";
  return out;
}

std::optional<CampaignRow> decode_row(std::string_view line) {
  static constexpr std::string_view kHashField = ",\"row_hash\":\"";
  const auto hash_pos = line.rfind(kHashField);
  if (hash_pos == std::string_view::npos) return std::nullopt;
  const std::string_view prefix = line.substr(0, hash_pos);
  const std::string_view tail = line.substr(hash_pos + kHashField.size());
  if (tail.size() != 18 || tail.substr(16) != "\"}") return std::nullopt;
  if (hex16(hash_bytes(kRowHashKey, prefix)) != tail.substr(0, 16)) {
    return std::nullopt;
  }
  CampaignRow row;
  try {
    const Json doc = Json::parse(line);
    const Json* spec = doc.find("spec");
    if (!spec) return std::nullopt;
    const auto spec_hash = [&]() -> std::optional<std::uint64_t> {
      const std::string& hex = spec->as_string();
      if (hex.size() != 16) return std::nullopt;
      std::uint64_t v = 0;
      const auto [ptr, ec] =
          std::from_chars(hex.data(), hex.data() + 16, v, 16);
      if (ec != std::errc{} || ptr != hex.data() + 16) return std::nullopt;
      return v;
    }();
    if (!spec_hash) return std::nullopt;
    row.spec_hash = *spec_hash;
    const Json* field = nullptr;
    if (!(field = doc.find("protocol"))) return std::nullopt;
    row.protocol = field->as_string();
    if (!(field = doc.find("n"))) return std::nullopt;
    row.params.n = static_cast<std::uint32_t>(field->as_int());
    if (!(field = doc.find("t"))) return std::nullopt;
    row.params.t = static_cast<std::uint32_t>(field->as_int());
    if (!(field = doc.find("backend"))) return std::nullopt;
    row.backend = field->as_string();
    if (!(field = doc.find("fault"))) return std::nullopt;
    row.fault = field->as_string();
    if (!(field = doc.find("seed_index"))) return std::nullopt;
    row.seed_index = field->as_uint();
    if (!(field = doc.find("seed"))) return std::nullopt;
    row.seed = field->as_uint();
    if (!(field = doc.find("rounds"))) return std::nullopt;
    row.rounds = static_cast<Round>(field->as_uint());
    if (!(field = doc.find("messages"))) return std::nullopt;
    row.messages = field->as_uint();
    if (!(field = doc.find("static_bound"))) return std::nullopt;
    if (!field->is_null()) {
      row.static_bound = field->as_uint();
    }
    if (!(field = doc.find("decided"))) return std::nullopt;
    row.decided = static_cast<std::uint32_t>(field->as_int());
    if (!(field = doc.find("agree"))) return std::nullopt;
    row.agree = field->as_bool();
  } catch (const std::exception&) {
    return std::nullopt;
  }
  // Canonical-form check: a line that decodes but would not re-encode to
  // the same bytes (reordered fields, whitespace, extra fields) is rejected
  // — the merge step may only ever emit canonical bytes.
  if (encode_row(row) != line) return std::nullopt;
  return row;
}

std::vector<Value> derive_proposals(std::uint64_t seed, std::uint32_t n) {
  const crypto::SipKey key = crypto::derive_key(seed, kProposalContext);
  const crypto::SipHasher base(key);
  std::vector<Value> proposals;
  proposals.reserve(n);
  for (std::uint32_t p = 0; p < n; ++p) {
    crypto::SipHasher h = base;
    h.absorb_u32(p);
    proposals.push_back(Value::bit(static_cast<int>(h.digest() & 1)));
  }
  return proposals;
}

Adversary make_fault_adversary(const std::string& fault,
                               const SystemParams& params,
                               std::uint64_t seed) {
  const auto [kind, arg] = split_fault(fault);
  if (kind == "fault-free") {
    if (arg) spec_error("fault plan 'fault-free' takes no argument");
    return Adversary::none();
  }
  if (kind == "random-omissions") {
    const std::uint64_t permille = arg.value_or(250);
    if (permille > 1000) {
      spec_error("fault plan '" + fault + "': permille > 1000");
    }
    return random_omissions(tail_group(params, params.t), seed,
                            static_cast<std::uint32_t>(permille));
  }
  if (!arg) spec_error("fault plan '" + fault + "': missing :K argument");
  const std::uint32_t k = checked_budget(fault, params, *arg);
  if (kind == "crash") {
    const crypto::SipKey key = crypto::derive_key(seed, kFaultContext);
    const crypto::SipHasher base(key);
    std::vector<std::pair<ProcessId, Round>> crashes;
    for (std::uint32_t i = 0; i < k; ++i) {
      crypto::SipHasher h = base;
      h.absorb_u32(i);
      crashes.emplace_back(params.n - 1 - i,
                           static_cast<Round>(1 + h.digest() % 4));
    }
    return crash_schedule(std::move(crashes));
  }
  if (kind == "mute") return mute_group(tail_group(params, k), 2);
  if (kind == "isolate") return isolate_group(tail_group(params, k), 2);
  if (kind == "silent-byz") {
    Adversary adv;
    adv.faulty = tail_group(params, k);
    adv.byzantine = adv.faulty;
    adv.byzantine_factory = byz_silent();
    return adv;
  }
  if (kind == "noise-byz") {
    Adversary adv;
    adv.faulty = tail_group(params, k);
    adv.byzantine = adv.faulty;
    adv.byzantine_factory = byz_noise(seed, 12);
    return adv;
  }
  spec_error("unknown fault plan '" + fault + "' (known: " +
             fault_plan_names() + ")");
}

const char* fault_plan_names() {
  return "fault-free crash:K mute:K isolate:K random-omissions:P "
         "silent-byz:K noise-byz:K";
}

TaskRunner::TaskRunner(const CampaignSpec& spec) : spec_(spec) {
  for (const std::string& backend : spec.backends) {
    if (backends_.contains(backend)) continue;
    const auto parsed = engine::parse_backend_spec(backend);
    if (!parsed) {
      spec_error("backend '" + backend + "': malformed spec");
    }
    backends_.emplace(backend, engine::Registry::global().make(*parsed));
  }
}

CampaignRow TaskRunner::run(const TaskSpec& task) const {
  const auto backend = backends_.find(task.backend);
  if (backend == backends_.end()) {
    spec_error("task backend '" + task.backend + "' not in campaign spec");
  }
  const auto factory =
      protocols::make_protocol_by_name(task.protocol, task.params.n);
  if (!factory) spec_error("unknown protocol '" + task.protocol + "'");

  const std::vector<Value> proposals =
      derive_proposals(task.seed, task.params.n);
  const Adversary adversary =
      make_fault_adversary(task.fault, task.params, task.seed);

  RunOptions options;
  options.record_trace = false;  // streaming campaigns never keep traces

  const RunResult res = backend->second->run(task.params, *factory, proposals,
                                             adversary, options);

  CampaignRow row;
  row.spec_hash = task_spec_hash(spec_, task);
  row.protocol = task.protocol;
  row.params = task.params;
  row.backend = task.backend;
  row.fault = task.fault;
  row.seed_index = task.seed_index;
  row.seed = task.seed;
  row.rounds = res.rounds_executed;
  row.messages = res.messages_sent_by_correct;

  std::string bound_key = task.protocol + "|";
  append_u64(bound_key, task.params.n);
  bound_key += "|";
  append_u64(bound_key, task.params.t);
  const auto cached = bound_cache_.find(bound_key);
  if (cached != bound_cache_.end()) {
    row.static_bound = cached->second;
  } else {
    std::optional<std::uint64_t> bound;
    if (const statics::CommSpec* comm =
            protocols::find_comm_spec(task.protocol)) {
      bound = statics::budget_at(statics::analyze(*comm), task.params).messages;
    }
    bound_cache_.emplace(std::move(bound_key), bound);
    row.static_bound = bound;
  }

  std::optional<Value> decision;
  bool agree = true;
  std::uint32_t correct = 0;
  for (ProcessId p = 0; p < task.params.n; ++p) {
    if (adversary.is_faulty(p)) continue;
    ++correct;
    if (!res.decisions[p]) {
      agree = false;
      continue;
    }
    ++row.decided;
    if (!decision) {
      decision = *res.decisions[p];
    } else if (!(*decision == *res.decisions[p])) {
      agree = false;
    }
  }
  row.agree = agree && row.decided == correct && correct > 0;
  return row;
}

}  // namespace ba::service
