#include "core/ba.h"

#include <sstream>

#include "protocols/common.h"

namespace ba {

validity::SolvabilityVerdict AgreementProblem::analyze() const {
  return validity::solvability(property_, params_.n, params_.t);
}

namespace {

/// Zero-message solver for trivial problems: decide the always-admissible
/// value in round 1.
class TrivialSolver final : public protocols::DecidingProcess {
 public:
  explicit TrivialSolver(Value v) : v_(std::move(v)) {}
  Outbox outbox_for_round(Round) override { return {}; }
  void deliver(Round r, const Inbox&) override {
    if (r == 1) decide(v_);
  }

 private:
  Value v_;
};

std::optional<Value> find_trivial_value(
    const validity::ValidityProperty& val, const SystemParams& params) {
  for (const Value& v : val.output_domain) {
    bool always = true;
    validity::for_each_input_config(
        params.n, params.t, val.input_domain,
        [&](const validity::InputConfig& c) {
          if (!val.admissible(c, v)) {
            always = false;
            return false;
          }
          return true;
        });
    if (always) return v;
  }
  return std::nullopt;
}

}  // namespace

std::optional<ProtocolFactory> AgreementProblem::make_solver(
    bool authenticated,
    std::shared_ptr<const crypto::Authenticator> auth) const {
  if (auto trivial = find_trivial_value(property_, params_)) {
    Value v = *trivial;
    return ProtocolFactory{[v](const ProcessContext&) {
      return std::make_unique<TrivialSolver>(v);
    }};
  }
  if (!validity::satisfies_cc(property_, params_.n, params_.t)) {
    return std::nullopt;  // Theorem 4: CC is necessary
  }
  if (authenticated) {
    if (!auth) return std::nullopt;
    return reductions::agreement_from_ic(
        property_, params_,
        protocols::auth_interactive_consistency(std::move(auth)));
  }
  if (params_.n <= 3 * params_.t) return std::nullopt;  // FLM / Lemma 10
  return reductions::agreement_from_ic(property_, params_,
                                       protocols::eig_interactive_consistency());
}

std::optional<std::string> AgreementProblem::check_execution(
    const ExecutionTrace& trace) const {
  const validity::InputConfig c = input_conf(trace);
  for (ProcessId p = 0; p < trace.params.n; ++p) {
    if (trace.faulty.contains(p)) continue;
    const auto& d = trace.procs[p].decision;
    if (!d) continue;
    if (!property_.admissible(c, *d)) {
      std::ostringstream os;
      os << "correct p" << p << " decided inadmissible value " << *d;
      return os.str();
    }
  }
  return std::nullopt;
}

validity::InputConfig input_conf(const ExecutionTrace& trace) {
  std::vector<std::optional<Value>> slots(trace.params.n);
  for (ProcessId p = 0; p < trace.params.n; ++p) {
    if (!trace.faulty.contains(p)) slots[p] = trace.procs[p].proposal;
  }
  return validity::InputConfig{std::move(slots)};
}

}  // namespace ba
