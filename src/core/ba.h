#pragma once

// Public facade of the library.
//
//   #include "core/ba.h"
//
// brings in the whole stack: the synchronous runtime, the execution-backend
// engine (lockstep + simulator behind one interface), adversaries, the
// execution calculus, protocols, validity framework, reductions, and the
// Theorem 2 attack engine — plus the high-level `AgreementProblem` type that
// ties §4/§5 together: describe a problem by its validity property and get
// its solvability verdict (Theorem 4) and, when solvable, an actual solver
// synthesized per Algorithm 2.

#include <memory>
#include <optional>
#include <string>

#include "adversary/byzantine.h"
#include "analysis/lint.h"
#include "adversary/omission.h"
#include "async/async_process.h"
#include "async/async_system.h"
#include "async/backend.h"
#include "async/ben_or.h"
#include "async/bracha.h"
#include "async/coin.h"
#include "async/explore.h"
#include "async/protocols.h"
#include "async/scheduler.h"
#include "calculus/formal.h"
#include "calculus/isolation.h"
#include "calculus/merge.h"
#include "calculus/swap_omission.h"
#include "crypto/signature.h"
#include "engine/backend.h"
#include "engine/registry.h"
#include "faults/compile.h"
#include "faults/fault_spec.h"
#include "lowerbound/attack.h"
#include "lowerbound/certificate.h"
#include "lowerbound/certificate_io.h"
#include "lowerbound/dolev_reischuk.h"
#include "lowerbound/lemma2.h"
#include "lowerbound/probe.h"
#include "lowerbound/sweep.h"
#include "parallel/experiment_pool.h"
#include "parallel/seed.h"
#include "protocols/adapters.h"
#include "protocols/beyond_agreement.h"
#include "protocols/broadcast.h"
#include "protocols/comm_specs.h"
#include "protocols/crusader.h"
#include "protocols/dolev_strong.h"
#include "protocols/early_stopping.h"
#include "protocols/eig.h"
#include "protocols/external_validity.h"
#include "protocols/gradecast.h"
#include "protocols/interactive_consistency.h"
#include "protocols/parallel.h"
#include "protocols/phase_king.h"
#include "protocols/registry.h"
#include "protocols/turpin_coan.h"
#include "protocols/weak_consensus.h"
#include "reductions/classic.h"
#include "service/campaign.h"
#include "service/ndjson.h"
#include "service/runner.h"
#include "service/worker.h"
#include "reductions/from_ic.h"
#include "reductions/weak_from_any.h"
#include "runtime/sync_system.h"
#include "runtime/trace_io.h"
#include "sim/fault.h"
#include "sim/link.h"
#include "sim/metrics.h"
#include "sim/simulator.h"
#include "sim/sync_adapter.h"
#include "statics/analyzer.h"
#include "statics/comm_spec.h"
#include "statics/poly.h"
#include "validity/properties.h"
#include "validity/algebra.h"
#include "validity/solvability.h"

namespace ba {

/// A Byzantine agreement problem: an (n, t) system plus a validity property.
class AgreementProblem {
 public:
  AgreementProblem(SystemParams params, validity::ValidityProperty property)
      : params_(params), property_(std::move(property)) {}

  [[nodiscard]] const SystemParams& params() const { return params_; }
  [[nodiscard]] const validity::ValidityProperty& property() const {
    return property_;
  }

  /// Theorem 4 verdict (exact enumeration over the finite domains).
  [[nodiscard]] validity::SolvabilityVerdict analyze() const;

  /// Synthesizes a solver per the sufficiency proof of Theorem 4:
  ///  * trivial problem        -> zero-message constant decision;
  ///  * CC + authenticated     -> Algorithm 2 over n x Dolev-Strong IC;
  ///  * CC + n > 3t (unauth)   -> Algorithm 2 over EIG IC.
  /// Returns nullopt when the problem is unsolvable in the chosen setting.
  [[nodiscard]] std::optional<ProtocolFactory> make_solver(
      bool authenticated,
      std::shared_ptr<const crypto::Authenticator> auth = nullptr) const;

  /// Checks an execution's decisions against the validity property: all
  /// correct decisions must lie in val(input configuration of the trace).
  [[nodiscard]] std::optional<std::string> check_execution(
      const ExecutionTrace& trace) const;

 private:
  SystemParams params_;
  validity::ValidityProperty property_;
};

/// The input configuration an execution corresponds to (§4.1).
validity::InputConfig input_conf(const ExecutionTrace& trace);

}  // namespace ba
