#pragma once

// SipHash-2-4 (Aumasson & Bernstein), the keyed 64-bit PRF we use as the MAC
// underlying simulated signatures. A real deployment would use asymmetric
// signatures; the paper's authenticated model [30] only requires
// unforgeability, which a secret-keyed PRF provides against the simulated
// adversary (strategies never see other processes' keys — see
// crypto/signature.h for the capability discipline).

#include <array>
#include <cstdint>
#include <span>

namespace ba::crypto {

struct SipKey {
  std::uint64_t k0{0};
  std::uint64_t k1{0};

  friend bool operator==(const SipKey&, const SipKey&) = default;
};

/// SipHash-2-4 of `data` under `key`.
std::uint64_t siphash24(const SipKey& key, std::span<const std::uint8_t> data);

/// Deterministic key derivation: splits a 64-bit master seed and a context
/// label into independent SipKeys (used to give each process its own key).
SipKey derive_key(std::uint64_t master_seed, std::uint64_t context);

}  // namespace ba::crypto
