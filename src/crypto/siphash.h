#pragma once

// SipHash-2-4 (Aumasson & Bernstein), the keyed 64-bit PRF we use as the MAC
// underlying simulated signatures. A real deployment would use asymmetric
// signatures; the paper's authenticated model [30] only requires
// unforgeability, which a secret-keyed PRF provides against the simulated
// adversary (strategies never see other processes' keys — see
// crypto/signature.h for the capability discipline).
//
// Two APIs:
//   * `siphash24` — one-shot hash of a byte span;
//   * `SipHasher` — the same function as a resumable stream. A hasher can be
//     copied mid-stream and each copy extended independently, so tree- and
//     chain-shaped keys (EIG paths, signature chains) derive a child's digest
//     from a snapshot of the parent's state in O(suffix) instead of
//     re-hashing the whole path. `digest()` is non-destructive and
//     bit-identical to `siphash24` over the full absorbed byte sequence
//     (tests/crypto/siphash_incremental_test.cpp pins this on 10^5 random
//     paths).

#include <array>
#include <cstdint>
#include <span>

namespace ba::crypto {

struct SipKey {
  std::uint64_t k0{0};
  std::uint64_t k1{0};

  friend bool operator==(const SipKey&, const SipKey&) = default;
};

/// SipHash-2-4 of `data` under `key`.
std::uint64_t siphash24(const SipKey& key, std::span<const std::uint8_t> data);

/// Deterministic key derivation: splits a 64-bit master seed and a context
/// label into independent SipKeys (used to give each process its own key).
SipKey derive_key(std::uint64_t master_seed, std::uint64_t context);

/// Streaming SipHash-2-4. Absorb bytes in any chunking; `digest()` returns
/// exactly `siphash24(key, <all bytes absorbed so far>)`. Copyable: a copy
/// snapshots the stream state, so a parent prefix is compressed once and
/// shared by every child extension.
class SipHasher {
 public:
  explicit SipHasher(const SipKey& key);

  void absorb(std::span<const std::uint8_t> data);
  /// Absorbs the 4 little-endian bytes of `v` (the encoding used for path
  /// elements and signer ids throughout the library).
  void absorb_u32(std::uint32_t v);
  /// Absorbs the 8 little-endian bytes of `v`.
  void absorb_u64(std::uint64_t v);

  /// Finalizes a copy of the state; the hasher itself remains extendable.
  [[nodiscard]] std::uint64_t digest() const;

  /// Total bytes absorbed so far.
  [[nodiscard]] std::uint64_t absorbed() const { return len_; }

 private:
  std::array<std::uint64_t, 4> v_;
  std::uint64_t pending_{0};      // tail bytes not yet compressed, LE-packed
  std::uint32_t pending_len_{0};  // 0..7
  std::uint64_t len_{0};
};

}  // namespace ba::crypto
