#include "crypto/siphash.h"

namespace ba::crypto {
namespace {

inline std::uint64_t rotl(std::uint64_t x, int b) {
  return (x << b) | (x >> (64 - b));
}

struct SipState {
  std::uint64_t v0, v1, v2, v3;

  explicit SipState(const SipKey& key)
      : v0(key.k0 ^ 0x736f6d6570736575ULL),
        v1(key.k1 ^ 0x646f72616e646f6dULL),
        v2(key.k0 ^ 0x6c7967656e657261ULL),
        v3(key.k1 ^ 0x7465646279746573ULL) {}
  SipState(std::uint64_t a, std::uint64_t b, std::uint64_t c, std::uint64_t d)
      : v0(a), v1(b), v2(c), v3(d) {}

  void round() {
    v0 += v1;
    v1 = rotl(v1, 13);
    v1 ^= v0;
    v0 = rotl(v0, 32);
    v2 += v3;
    v3 = rotl(v3, 16);
    v3 ^= v2;
    v0 += v3;
    v3 = rotl(v3, 21);
    v3 ^= v0;
    v2 += v1;
    v1 = rotl(v1, 17);
    v1 ^= v2;
    v2 = rotl(v2, 32);
  }

  void compress(std::uint64_t m) {
    v3 ^= m;
    round();
    round();
    v0 ^= m;
  }

  [[nodiscard]] std::uint64_t finalize(std::uint64_t last) {
    compress(last);
    v2 ^= 0xff;
    round();
    round();
    round();
    round();
    return v0 ^ v1 ^ v2 ^ v3;
  }
};

}  // namespace

std::uint64_t siphash24(const SipKey& key,
                        std::span<const std::uint8_t> data) {
  SipState s(key);

  const std::size_t len = data.size();
  const std::size_t end = len - (len % 8);
  for (std::size_t i = 0; i < end; i += 8) {
    std::uint64_t m = 0;
    for (int b = 0; b < 8; ++b) {
      m |= static_cast<std::uint64_t>(data[i + b]) << (8 * b);
    }
    s.compress(m);
  }

  std::uint64_t last = static_cast<std::uint64_t>(len & 0xff) << 56;
  for (std::size_t i = end; i < len; ++i) {
    last |= static_cast<std::uint64_t>(data[i]) << (8 * (i - end));
  }
  return s.finalize(last);
}

SipKey derive_key(std::uint64_t master_seed, std::uint64_t context) {
  // Two domain-separated SipHash applications over the context, keyed by the
  // master seed.
  const SipKey base{master_seed, ~master_seed};
  std::array<std::uint8_t, 9> buf{};
  for (int i = 0; i < 8; ++i) buf[i] = (context >> (8 * i)) & 0xff;
  buf[8] = 0;
  std::uint64_t k0 = siphash24(base, buf);
  buf[8] = 1;
  std::uint64_t k1 = siphash24(base, buf);
  return SipKey{k0, k1};
}

SipHasher::SipHasher(const SipKey& key) {
  const SipState s(key);
  v_ = {s.v0, s.v1, s.v2, s.v3};
}

void SipHasher::absorb(std::span<const std::uint8_t> data) {
  len_ += data.size();
  std::size_t i = 0;
  // Top up the pending block first.
  while (pending_len_ > 0 && pending_len_ < 8 && i < data.size()) {
    pending_ |= static_cast<std::uint64_t>(data[i++]) << (8 * pending_len_);
    ++pending_len_;
  }
  SipState s(v_[0], v_[1], v_[2], v_[3]);
  if (pending_len_ == 8) {
    s.compress(pending_);
    pending_ = 0;
    pending_len_ = 0;
  }
  for (; i + 8 <= data.size(); i += 8) {
    std::uint64_t m = 0;
    for (int b = 0; b < 8; ++b) {
      m |= static_cast<std::uint64_t>(data[i + b]) << (8 * b);
    }
    s.compress(m);
  }
  v_ = {s.v0, s.v1, s.v2, s.v3};
  for (; i < data.size(); ++i) {
    pending_ |= static_cast<std::uint64_t>(data[i]) << (8 * pending_len_);
    ++pending_len_;
  }
}

void SipHasher::absorb_u32(std::uint32_t v) {
  std::array<std::uint8_t, 4> buf;
  for (int i = 0; i < 4; ++i) {
    buf[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((v >> (8 * i)) & 0xff);
  }
  absorb(buf);
}

void SipHasher::absorb_u64(std::uint64_t v) {
  std::array<std::uint8_t, 8> buf;
  for (int i = 0; i < 8; ++i) {
    buf[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((v >> (8 * i)) & 0xff);
  }
  absorb(buf);
}

std::uint64_t SipHasher::digest() const {
  SipState s(v_[0], v_[1], v_[2], v_[3]);
  const std::uint64_t last =
      pending_ | (static_cast<std::uint64_t>(len_ & 0xff) << 56);
  return s.finalize(last);
}

}  // namespace ba::crypto
