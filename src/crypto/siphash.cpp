#include "crypto/siphash.h"

namespace ba::crypto {
namespace {

inline std::uint64_t rotl(std::uint64_t x, int b) {
  return (x << b) | (x >> (64 - b));
}

struct SipState {
  std::uint64_t v0, v1, v2, v3;

  void round() {
    v0 += v1;
    v1 = rotl(v1, 13);
    v1 ^= v0;
    v0 = rotl(v0, 32);
    v2 += v3;
    v3 = rotl(v3, 16);
    v3 ^= v2;
    v0 += v3;
    v3 = rotl(v3, 21);
    v3 ^= v0;
    v2 += v1;
    v1 = rotl(v1, 17);
    v1 ^= v2;
    v2 = rotl(v2, 32);
  }
};

}  // namespace

std::uint64_t siphash24(const SipKey& key,
                        std::span<const std::uint8_t> data) {
  SipState s{
      key.k0 ^ 0x736f6d6570736575ULL,
      key.k1 ^ 0x646f72616e646f6dULL,
      key.k0 ^ 0x6c7967656e657261ULL,
      key.k1 ^ 0x7465646279746573ULL,
  };

  const std::size_t len = data.size();
  const std::size_t end = len - (len % 8);
  for (std::size_t i = 0; i < end; i += 8) {
    std::uint64_t m = 0;
    for (int b = 0; b < 8; ++b) {
      m |= static_cast<std::uint64_t>(data[i + b]) << (8 * b);
    }
    s.v3 ^= m;
    s.round();
    s.round();
    s.v0 ^= m;
  }

  std::uint64_t last = static_cast<std::uint64_t>(len & 0xff) << 56;
  for (std::size_t i = end; i < len; ++i) {
    last |= static_cast<std::uint64_t>(data[i]) << (8 * (i - end));
  }
  s.v3 ^= last;
  s.round();
  s.round();
  s.v0 ^= last;

  s.v2 ^= 0xff;
  s.round();
  s.round();
  s.round();
  s.round();
  return s.v0 ^ s.v1 ^ s.v2 ^ s.v3;
}

SipKey derive_key(std::uint64_t master_seed, std::uint64_t context) {
  // Two domain-separated SipHash applications over the context, keyed by the
  // master seed.
  const SipKey base{master_seed, ~master_seed};
  std::array<std::uint8_t, 9> buf{};
  for (int i = 0; i < 8; ++i) buf[i] = (context >> (8 * i)) & 0xff;
  buf[8] = 0;
  std::uint64_t k0 = siphash24(base, buf);
  buf[8] = 1;
  std::uint64_t k1 = siphash24(base, buf);
  return SipKey{k0, k1};
}

}  // namespace ba::crypto
