#include "crypto/signature.h"

#include <set>

namespace ba::crypto {

Value Signature::to_value() const {
  return Value{ValueVec{Value{"sig"}, Value{static_cast<std::int64_t>(signer)},
                        Value{static_cast<std::int64_t>(mac)}}};
}

std::optional<Signature> Signature::from_value(const Value& v) {
  if (!v.is_vec()) return std::nullopt;
  const ValueVec& vec = v.as_vec();
  if (vec.size() != 3 || !vec[0].is_str() || vec[0].as_str() != "sig" ||
      !vec[1].is_int() || !vec[2].is_int()) {
    return std::nullopt;
  }
  // Reject non-canonical signer encodings: the signer is a 32-bit process
  // id, so out-of-range values (which a cast would silently truncate) are
  // malformed.
  const std::int64_t signer = vec[1].as_int();
  if (signer < 0 || signer > 0xffffffffLL) return std::nullopt;
  return Signature{static_cast<ProcessId>(signer),
                   static_cast<std::uint64_t>(vec[2].as_int())};
}

Authenticator::Authenticator(std::uint64_t seed, std::uint32_t n) : n_(n) {
  keys_.reserve(n);
  for (std::uint32_t p = 0; p < n; ++p) {
    keys_.push_back(derive_key(seed, p));
  }
}

std::uint64_t Authenticator::mac(ProcessId signer, const Bytes& msg) const {
  return siphash24(keys_.at(signer), msg);
}

bool Authenticator::verify(const Signature& sig, const Bytes& message) const {
  if (sig.signer >= n_) return false;
  return mac(sig.signer, message) == sig.mac;
}

bool Authenticator::verify_value(const Signature& sig,
                                 const Value& message) const {
  return verify(sig, encode_value(message));
}

Signature Signer::sign(const Bytes& message) const {
  return Signature{self_, auth_->mac(self_, message)};
}

Signature Signer::sign_value(const Value& message) const {
  return sign(encode_value(message));
}

Bytes SigChain::prefix_bytes(std::size_t upto) const {
  BytesWriter w;
  w.value(value_);
  for (std::size_t i = 0; i < upto; ++i) {
    w.u32(sigs_[i].signer);
    w.u64(sigs_[i].mac);
  }
  return w.take();
}

void SigChain::extend(const Signer& signer) {
  Bytes bytes = prefix_bytes(sigs_.size());
  sigs_.push_back(signer.sign(bytes));
}

bool SigChain::verify(const Authenticator& auth, std::size_t min_len,
                      std::optional<ProcessId> expected_first) const {
  if (sigs_.size() < min_len) return false;
  if (expected_first && (sigs_.empty() || sigs_[0].signer != *expected_first)) {
    return false;
  }
  std::set<ProcessId> signers;
  for (std::size_t i = 0; i < sigs_.size(); ++i) {
    if (!signers.insert(sigs_[i].signer).second) return false;  // distinct
    if (!auth.verify(sigs_[i], prefix_bytes(i))) return false;
  }
  return true;
}

bool SigChain::contains_signer(ProcessId p) const {
  for (const Signature& s : sigs_) {
    if (s.signer == p) return true;
  }
  return false;
}

Value SigChain::to_value() const {
  ValueVec out;
  out.reserve(sigs_.size() + 2);
  out.emplace_back("chain");
  out.push_back(value_);
  for (const Signature& s : sigs_) out.push_back(s.to_value());
  return Value{std::move(out)};
}

std::optional<SigChain> SigChain::from_value(const Value& v) {
  if (!v.is_vec()) return std::nullopt;
  const ValueVec& vec = v.as_vec();
  if (vec.size() < 2 || !vec[0].is_str() || vec[0].as_str() != "chain") {
    return std::nullopt;
  }
  SigChain chain(vec[1]);
  for (std::size_t i = 2; i < vec.size(); ++i) {
    auto sig = Signature::from_value(vec[i]);
    if (!sig) return std::nullopt;
    chain.sigs_.push_back(*sig);
  }
  return chain;
}

std::uint32_t ChainArena::root(const Value& value) {
  auto it = root_ids_.find(value);
  if (it != root_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(nodes_.size());
  Node node;
  node.root_ref = static_cast<std::uint32_t>(roots_.size());
  BytesWriter w;
  w.value(value);
  node.prefix = w.take();
  roots_.push_back(value);
  nodes_.push_back(std::move(node));
  root_ids_.emplace(value, id);
  return id;
}

std::uint32_t ChainArena::append(std::uint32_t parent, const Signature& sig) {
  const ChildKey key{parent, sig.signer, sig.mac};
  auto it = child_ids_.find(key);
  if (it != child_ids_.end()) return it->second;
  const Node& par = nodes_[parent];
  const auto id = static_cast<std::uint32_t>(nodes_.size());
  Node node;
  node.parent = parent;
  node.root_ref = par.root_ref;
  node.length = par.length + 1;
  node.sig = sig;
  node.mac_ok = auth_->verify(sig, par.prefix);
  if (node.mac_ok) {
    // Incremental prefix: the parent's signing bytes plus this signature's
    // canonical u32/u64 encoding — byte-identical to the seed's
    // SigChain::prefix_bytes, never rebuilt from the chain front.
    BytesWriter w;
    w.u32(sig.signer);
    w.u64(sig.mac);
    node.prefix = par.prefix;
    node.prefix.insert(node.prefix.end(), w.data().begin(), w.data().end());
  }
  // Cached-negative nodes keep an empty prefix: verification stops at the
  // first bad signature, so their children are never materialized.
  nodes_.push_back(std::move(node));
  child_ids_.emplace(key, id);
  return id;
}

std::uint32_t ChainArena::extend(std::uint32_t parent, const Signer& signer) {
  return append(parent, signer.sign(nodes_[parent].prefix));
}

bool ChainArena::contains_signer(std::uint32_t node, ProcessId p) const {
  for (std::uint32_t cur = node; nodes_[cur].parent != kNoNode;
       cur = nodes_[cur].parent) {
    if (nodes_[cur].sig.signer == p) return true;
  }
  return false;
}

Value ChainArena::to_value(std::uint32_t node) const {
  ValueVec out;
  out.resize(static_cast<std::size_t>(nodes_[node].length) + 2);
  std::size_t i = out.size();
  for (std::uint32_t cur = node; nodes_[cur].parent != kNoNode;
       cur = nodes_[cur].parent) {
    out[--i] = nodes_[cur].sig.to_value();
  }
  out[0] = Value{"chain"};
  out[1] = value_of(node);
  return Value{std::move(out)};
}

std::vector<ChainArena::Accepted> ChainArena::verify_batch(
    std::span<const Value* const> chains, std::size_t min_len,
    std::optional<ProcessId> expected_first) {
  std::vector<Accepted> out;
  for (const Value* cv : chains) {
    // SigChain::from_value's parse rules, without materializing a SigChain.
    if (!cv->is_vec()) continue;
    const ValueVec& vec = cv->as_vec();
    if (vec.size() < 2 || !vec[0].is_str() || vec[0].as_str() != "chain") {
      continue;
    }
    sig_buf_.clear();
    bool ok = true;
    for (std::size_t i = 2; i < vec.size(); ++i) {
      auto sig = Signature::from_value(vec[i]);
      if (!sig) {
        ok = false;
        break;
      }
      sig_buf_.push_back(*sig);
    }
    if (!ok) continue;
    // SigChain::verify's acceptance rules: length, expected first signer,
    // distinct signers, every MAC valid over its prefix.
    if (sig_buf_.size() < min_len) continue;
    if (expected_first &&
        (sig_buf_.empty() || sig_buf_[0].signer != *expected_first)) {
      continue;
    }
    for (std::size_t i = 1; i < sig_buf_.size() && ok; ++i) {
      for (std::size_t j = 0; j < i; ++j) {
        if (sig_buf_[j].signer == sig_buf_[i].signer) {
          ok = false;
          break;
        }
      }
    }
    if (!ok) continue;
    std::uint32_t node = root(vec[1]);
    for (const Signature& sig : sig_buf_) {
      node = append(node, sig);
      if (!nodes_[node].mac_ok) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    out.push_back(Accepted{node, vec[1]});
  }
  return out;
}

}  // namespace ba::crypto
