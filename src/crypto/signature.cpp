#include "crypto/signature.h"

#include <set>

namespace ba::crypto {

Value Signature::to_value() const {
  return Value{ValueVec{Value{"sig"}, Value{static_cast<std::int64_t>(signer)},
                        Value{static_cast<std::int64_t>(mac)}}};
}

std::optional<Signature> Signature::from_value(const Value& v) {
  if (!v.is_vec()) return std::nullopt;
  const ValueVec& vec = v.as_vec();
  if (vec.size() != 3 || !vec[0].is_str() || vec[0].as_str() != "sig" ||
      !vec[1].is_int() || !vec[2].is_int()) {
    return std::nullopt;
  }
  // Reject non-canonical signer encodings: the signer is a 32-bit process
  // id, so out-of-range values (which a cast would silently truncate) are
  // malformed.
  const std::int64_t signer = vec[1].as_int();
  if (signer < 0 || signer > 0xffffffffLL) return std::nullopt;
  return Signature{static_cast<ProcessId>(signer),
                   static_cast<std::uint64_t>(vec[2].as_int())};
}

Authenticator::Authenticator(std::uint64_t seed, std::uint32_t n) : n_(n) {
  keys_.reserve(n);
  for (std::uint32_t p = 0; p < n; ++p) {
    keys_.push_back(derive_key(seed, p));
  }
}

std::uint64_t Authenticator::mac(ProcessId signer, const Bytes& msg) const {
  return siphash24(keys_.at(signer), msg);
}

bool Authenticator::verify(const Signature& sig, const Bytes& message) const {
  if (sig.signer >= n_) return false;
  return mac(sig.signer, message) == sig.mac;
}

bool Authenticator::verify_value(const Signature& sig,
                                 const Value& message) const {
  return verify(sig, encode_value(message));
}

Signature Signer::sign(const Bytes& message) const {
  return Signature{self_, auth_->mac(self_, message)};
}

Signature Signer::sign_value(const Value& message) const {
  return sign(encode_value(message));
}

Bytes SigChain::prefix_bytes(std::size_t upto) const {
  BytesWriter w;
  w.value(value_);
  for (std::size_t i = 0; i < upto; ++i) {
    w.u32(sigs_[i].signer);
    w.u64(sigs_[i].mac);
  }
  return w.take();
}

void SigChain::extend(const Signer& signer) {
  Bytes bytes = prefix_bytes(sigs_.size());
  sigs_.push_back(signer.sign(bytes));
}

bool SigChain::verify(const Authenticator& auth, std::size_t min_len,
                      std::optional<ProcessId> expected_first) const {
  if (sigs_.size() < min_len) return false;
  if (expected_first && (sigs_.empty() || sigs_[0].signer != *expected_first)) {
    return false;
  }
  std::set<ProcessId> signers;
  for (std::size_t i = 0; i < sigs_.size(); ++i) {
    if (!signers.insert(sigs_[i].signer).second) return false;  // distinct
    if (!auth.verify(sigs_[i], prefix_bytes(i))) return false;
  }
  return true;
}

bool SigChain::contains_signer(ProcessId p) const {
  for (const Signature& s : sigs_) {
    if (s.signer == p) return true;
  }
  return false;
}

Value SigChain::to_value() const {
  ValueVec out;
  out.reserve(sigs_.size() + 2);
  out.emplace_back("chain");
  out.push_back(value_);
  for (const Signature& s : sigs_) out.push_back(s.to_value());
  return Value{std::move(out)};
}

std::optional<SigChain> SigChain::from_value(const Value& v) {
  if (!v.is_vec()) return std::nullopt;
  const ValueVec& vec = v.as_vec();
  if (vec.size() < 2 || !vec[0].is_str() || vec[0].as_str() != "chain") {
    return std::nullopt;
  }
  SigChain chain(vec[1]);
  for (std::size_t i = 2; i < vec.size(); ++i) {
    auto sig = Signature::from_value(vec[i]);
    if (!sig) return std::nullopt;
    chain.sigs_.push_back(*sig);
  }
  return chain;
}

}  // namespace ba::crypto
