#pragma once

// Idealized digital signatures (Canetti [30], as assumed by the paper's
// authenticated algorithms). Implemented as per-process SipHash MACs whose
// keys only the issuing Authenticator knows. Unforgeability is enforced by a
// capability discipline:
//   * `Authenticator` (one per execution) derives a secret key per process
//     and exposes only public *verification*;
//   * a `Signer` capability, bound to one process id, is the only way to
//     produce a signature. Honest protocol factories close over the Signer
//     for `ctx.self`; Byzantine strategies get exactly the same — they can
//     sign anything *as themselves* but cannot sign as anyone else.
//
// Signatures embed into message payloads via to_value()/from_value() so the
// runtime stays payload-agnostic.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "crypto/siphash.h"
#include "runtime/serde.h"
#include "runtime/types.h"
#include "runtime/value.h"

namespace ba::crypto {

struct Signature {
  ProcessId signer{kNoProcess};
  std::uint64_t mac{0};

  [[nodiscard]] Value to_value() const;
  static std::optional<Signature> from_value(const Value& v);

  friend bool operator==(const Signature&, const Signature&) = default;
};

class Authenticator {
 public:
  /// `seed` randomizes keys per run; `n` is the system size.
  Authenticator(std::uint64_t seed, std::uint32_t n);

  [[nodiscard]] std::uint32_t n() const { return n_; }

  /// Public verification: anyone can check any signature.
  [[nodiscard]] bool verify(const Signature& sig, const Bytes& message) const;
  [[nodiscard]] bool verify_value(const Signature& sig,
                                  const Value& message) const;

 private:
  friend class Signer;
  [[nodiscard]] std::uint64_t mac(ProcessId signer, const Bytes& msg) const;

  std::uint32_t n_;
  std::vector<SipKey> keys_;
};

/// Signing capability for exactly one process.
class Signer {
 public:
  Signer() = default;
  Signer(std::shared_ptr<const Authenticator> auth, ProcessId self)
      : auth_(std::move(auth)), self_(self) {}

  [[nodiscard]] bool valid() const { return auth_ != nullptr; }
  [[nodiscard]] ProcessId id() const { return self_; }

  [[nodiscard]] Signature sign(const Bytes& message) const;
  [[nodiscard]] Signature sign_value(const Value& message) const;

 private:
  std::shared_ptr<const Authenticator> auth_;
  ProcessId self_{kNoProcess};
};

/// A signature chain, the Dolev-Strong workhorse: a value endorsed by an
/// ordered list of distinct signers, each signing the value concatenated with
/// the previous signatures.
class SigChain {
 public:
  SigChain() = default;
  explicit SigChain(Value value) : value_(std::move(value)) {}

  [[nodiscard]] const Value& value() const { return value_; }
  [[nodiscard]] const std::vector<Signature>& sigs() const { return sigs_; }
  [[nodiscard]] std::size_t length() const { return sigs_.size(); }

  /// Appends this signer's endorsement.
  void extend(const Signer& signer);

  /// Checks: k >= min_len distinct signers, first signer == expected_first
  /// (if given), and every MAC verifies over the correct prefix.
  [[nodiscard]] bool verify(const Authenticator& auth, std::size_t min_len,
                            std::optional<ProcessId> expected_first) const;

  [[nodiscard]] bool contains_signer(ProcessId p) const;

  [[nodiscard]] Value to_value() const;
  static std::optional<SigChain> from_value(const Value& v);

 private:
  [[nodiscard]] Bytes prefix_bytes(std::size_t upto) const;

  Value value_;
  std::vector<Signature> sigs_;
};

/// Arena-backed signature-chain store (the Dolev-Strong fast path). Chains
/// are (parent-chain-id, signer) pairs in a per-run arena: every distinct
/// prefix is one node holding its serialized signing bytes, extended
/// incrementally from the parent's cached buffer instead of re-encoded from
/// scratch, and each node's MAC is checked at most once per run. A relayed
/// chain that extends an already-verified prefix therefore costs one MAC
/// instead of the O(length) MACs over O(length^2) rebuilt bytes that
/// `SigChain::verify` pays — `verify_batch` checks a whole round's inbox in
/// one pass against the arena. Acceptance is exactly
/// `SigChain::from_value` + `SigChain::verify` (pinned by
/// tests/crypto/chain_arena_test.cpp), and `to_value` reproduces the seed
/// chain encoding byte-for-byte, so wire payloads and traces are unchanged.
///
/// Memory is O(bytes of distinct, genuinely signed chain material seen in
/// the run): invalid chains add at most one (cached-negative) node beyond
/// their longest valid prefix, and valid prefixes need real signatures,
/// which only the run's processes can produce.
class ChainArena {
 public:
  static constexpr std::uint32_t kNoNode = 0xffffffffu;

  explicit ChainArena(std::shared_ptr<const Authenticator> auth)
      : auth_(std::move(auth)) {}

  /// Interned zero-signature chain over `value`.
  std::uint32_t root(const Value& value);

  /// `parent` extended by this signer's endorsement of the parent's prefix
  /// bytes (deduplicated; always verified).
  std::uint32_t extend(std::uint32_t parent, const Signer& signer);

  [[nodiscard]] std::uint32_t length(std::uint32_t node) const {
    return nodes_[node].length;
  }
  /// The value the chain endorses.
  [[nodiscard]] const Value& value_of(std::uint32_t node) const {
    return roots_[nodes_[node].root_ref];
  }
  [[nodiscard]] bool contains_signer(std::uint32_t node, ProcessId p) const;

  /// The seed `SigChain::to_value` encoding: ["chain", value, sigs...].
  [[nodiscard]] Value to_value(std::uint32_t node) const;

  struct Accepted {
    std::uint32_t node{kNoNode};
    Value value;
  };

  /// One-pass verification of a round's worth of chain payload fields.
  /// Each element is screened with `SigChain::from_value`'s parse rules and
  /// `SigChain::verify(auth, min_len, expected_first)`'s acceptance rules;
  /// the accepted chains come back in input order. MAC checks hit the
  /// arena's verified-prefix memo, so only signatures never seen before are
  /// actually hashed.
  std::vector<Accepted> verify_batch(std::span<const Value* const> chains,
                                     std::size_t min_len,
                                     std::optional<ProcessId> expected_first);

 private:
  struct Node {
    std::uint32_t parent{kNoNode};
    std::uint32_t root_ref{0};  // index into roots_
    std::uint32_t length{0};    // signatures on the chain so far
    Signature sig;              // meaningless for roots
    bool mac_ok{true};          // roots vacuously verified
    Bytes prefix;               // signing bytes: value then every signature
  };

  struct ChildKey {
    std::uint32_t parent;
    ProcessId signer;
    std::uint64_t mac;

    friend bool operator==(const ChildKey&, const ChildKey&) = default;
  };
  struct ChildKeyHash {
    std::size_t operator()(const ChildKey& k) const {
      std::uint64_t h = (static_cast<std::uint64_t>(k.parent) << 32) ^ k.signer;
      h = (h ^ k.mac) * 0x9e3779b97f4a7c15ULL;
      return static_cast<std::size_t>(h ^ (h >> 29));
    }
  };

  /// Child of `parent` carrying `sig`; creates (and MAC-checks) the node on
  /// first sight, returns the cached node afterwards. The returned node may
  /// have mac_ok == false (cached-negative). Precondition: parent is valid.
  std::uint32_t append(std::uint32_t parent, const Signature& sig);

  std::shared_ptr<const Authenticator> auth_;
  std::vector<Node> nodes_;
  std::vector<Value> roots_;
  std::map<Value, std::uint32_t> root_ids_;
  std::unordered_map<ChildKey, std::uint32_t, ChildKeyHash> child_ids_;
  std::vector<Signature> sig_buf_;  // scratch for verify_batch parses
};

}  // namespace ba::crypto
