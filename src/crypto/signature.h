#pragma once

// Idealized digital signatures (Canetti [30], as assumed by the paper's
// authenticated algorithms). Implemented as per-process SipHash MACs whose
// keys only the issuing Authenticator knows. Unforgeability is enforced by a
// capability discipline:
//   * `Authenticator` (one per execution) derives a secret key per process
//     and exposes only public *verification*;
//   * a `Signer` capability, bound to one process id, is the only way to
//     produce a signature. Honest protocol factories close over the Signer
//     for `ctx.self`; Byzantine strategies get exactly the same — they can
//     sign anything *as themselves* but cannot sign as anyone else.
//
// Signatures embed into message payloads via to_value()/from_value() so the
// runtime stays payload-agnostic.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "crypto/siphash.h"
#include "runtime/serde.h"
#include "runtime/types.h"
#include "runtime/value.h"

namespace ba::crypto {

struct Signature {
  ProcessId signer{kNoProcess};
  std::uint64_t mac{0};

  [[nodiscard]] Value to_value() const;
  static std::optional<Signature> from_value(const Value& v);

  friend bool operator==(const Signature&, const Signature&) = default;
};

class Authenticator {
 public:
  /// `seed` randomizes keys per run; `n` is the system size.
  Authenticator(std::uint64_t seed, std::uint32_t n);

  [[nodiscard]] std::uint32_t n() const { return n_; }

  /// Public verification: anyone can check any signature.
  [[nodiscard]] bool verify(const Signature& sig, const Bytes& message) const;
  [[nodiscard]] bool verify_value(const Signature& sig,
                                  const Value& message) const;

 private:
  friend class Signer;
  [[nodiscard]] std::uint64_t mac(ProcessId signer, const Bytes& msg) const;

  std::uint32_t n_;
  std::vector<SipKey> keys_;
};

/// Signing capability for exactly one process.
class Signer {
 public:
  Signer() = default;
  Signer(std::shared_ptr<const Authenticator> auth, ProcessId self)
      : auth_(std::move(auth)), self_(self) {}

  [[nodiscard]] bool valid() const { return auth_ != nullptr; }
  [[nodiscard]] ProcessId id() const { return self_; }

  [[nodiscard]] Signature sign(const Bytes& message) const;
  [[nodiscard]] Signature sign_value(const Value& message) const;

 private:
  std::shared_ptr<const Authenticator> auth_;
  ProcessId self_{kNoProcess};
};

/// A signature chain, the Dolev-Strong workhorse: a value endorsed by an
/// ordered list of distinct signers, each signing the value concatenated with
/// the previous signatures.
class SigChain {
 public:
  SigChain() = default;
  explicit SigChain(Value value) : value_(std::move(value)) {}

  [[nodiscard]] const Value& value() const { return value_; }
  [[nodiscard]] const std::vector<Signature>& sigs() const { return sigs_; }
  [[nodiscard]] std::size_t length() const { return sigs_.size(); }

  /// Appends this signer's endorsement.
  void extend(const Signer& signer);

  /// Checks: k >= min_len distinct signers, first signer == expected_first
  /// (if given), and every MAC verifies over the correct prefix.
  [[nodiscard]] bool verify(const Authenticator& auth, std::size_t min_len,
                            std::optional<ProcessId> expected_first) const;

  [[nodiscard]] bool contains_signer(ProcessId p) const;

  [[nodiscard]] Value to_value() const;
  static std::optional<SigChain> from_value(const Value& v);

 private:
  [[nodiscard]] Bytes prefix_bytes(std::size_t upto) const;

  Value value_;
  std::vector<Signature> sigs_;
};

}  // namespace ba::crypto
