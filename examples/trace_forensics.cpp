// Example: execution forensics with the calculus API.
//
// Records two executions of phase-king consensus that differ only in an
// omission schedule, then:
//   * validates both against the Appendix-A well-formedness conditions;
//   * computes, per process, whether the executions are indistinguishable
//     (the relation all the paper's proofs run on);
//   * lifts one trace to formal behaviors and re-checks the determinism
//     condition by replaying the state machines;
//   * serializes a trace to bytes and restores it intact.

#include <cstdio>

#include "core/ba.h"

int main() {
  using namespace ba;

  SystemParams params{6, 2};
  auto protocol = protocols::phase_king_consensus();
  std::vector<Value> proposals{Value::bit(0), Value::bit(1), Value::bit(0),
                               Value::bit(1), Value::bit(0), Value::bit(1)};

  RunResult clean = run_execution(params, protocol, proposals,
                                  Adversary::none());
  RunResult faulty = run_execution(params, protocol, proposals,
                                   isolate_group(ProcessSet{{4, 5}}, 3));

  std::printf("clean run:  decision %s, %llu msgs, %u rounds\n",
              clean.unanimous_correct_decision()->to_string().c_str(),
              static_cast<unsigned long long>(clean.messages_sent_by_correct),
              clean.rounds_executed);
  std::printf("faulty run: decision %s, %llu msgs, %u rounds "
              "(p4, p5 isolated from round 3)\n\n",
              faulty.unanimous_correct_decision()->to_string().c_str(),
              static_cast<unsigned long long>(
                  faulty.messages_sent_by_correct),
              faulty.rounds_executed);

  // Well-formedness per A.1.6.
  std::printf("A.1.6 validity: clean %s, faulty %s\n",
              clean.trace.validate() ? "FAILED" : "ok",
              faulty.trace.validate() ? "FAILED" : "ok");

  // Who can tell the two executions apart?
  std::printf("indistinguishability (clean vs faulty), per process:\n");
  for (ProcessId p = 0; p < params.n; ++p) {
    std::printf("  p%u: %s\n", p,
                clean.trace.indistinguishable_for(p, faulty.trace)
                    ? "cannot distinguish"
                    : "distinguishes (different receive history)");
  }

  // Isolation checking per Definition 1.
  auto iso = calculus::isolation_round(faulty.trace, ProcessSet{{4, 5}});
  std::printf("\nDefinition 1: group {p4, p5} isolated from round %s\n",
              iso ? std::to_string(*iso).c_str() : "<not isolated>");

  // Formal behaviors + determinism condition (A.1.5 (7)).
  auto behaviors = calculus::to_behaviors(faulty.trace);
  bool all_ok = true;
  for (const auto& b : behaviors) {
    if (calculus::check_behavior_static(b) ||
        calculus::check_behavior_transitions(b, params, protocol)) {
      all_ok = false;
    }
  }
  std::printf("A.1.5 behavior conditions + determinism replay: %s\n",
              all_ok ? "all hold" : "VIOLATED");

  // Serialization round trip.
  Bytes bytes = encode_trace(faulty.trace);
  auto restored = decode_trace(bytes);
  std::printf("serialization: %zu bytes, restore %s, still validates: %s\n",
              bytes.size(), restored ? "ok" : "FAILED",
              restored && !restored->validate() ? "yes" : "no");

  // Bit-level accounting.
  std::printf("message complexity %llu, payload bytes %llu\n",
              static_cast<unsigned long long>(
                  faulty.trace.message_complexity()),
              static_cast<unsigned long long>(
                  faulty.trace.payload_bytes_sent_by_correct()));
  return 0;
}
