// Quickstart: run Dolev-Strong Byzantine broadcast with a Byzantine sender,
// then ask the library whether your agreement problem is solvable at all
// (Theorem 4) and what it must cost (Theorem 3).

#include <cstdio>
#include <memory>

#include "core/ba.h"

int main() {
  using namespace ba;

  // --- 1. A system of n = 7 processes, t = 2 corruptions. ----------------
  SystemParams params{7, 2};
  auto auth = std::make_shared<crypto::Authenticator>(/*seed=*/2024, params.n);

  // --- 2. Byzantine broadcast with an equivocating sender. ---------------
  ProtocolFactory bb = protocols::dolev_strong_broadcast(auth, /*sender=*/0);

  Adversary adv;
  adv.faulty = ProcessSet{{0}};
  adv.byzantine = adv.faulty;
  adv.byzantine_factory = byz_equivocate_bits(/*rounds=*/1);

  std::vector<Value> proposals(params.n, Value::bit(1));
  RunResult res = run_execution(params, bb, proposals, adv);

  std::printf("Dolev-Strong with equivocating sender:\n");
  for (ProcessId p = 1; p < params.n; ++p) {
    std::printf("  p%u decides %s\n", p,
                res.decisions[p] ? res.decisions[p]->to_string().c_str()
                                 : "<undecided>");
  }
  std::printf("  messages sent by correct processes: %llu\n\n",
              static_cast<unsigned long long>(res.messages_sent_by_correct));

  // --- 3. Solvability analysis (Theorem 4). ------------------------------
  AgreementProblem strong{params,
                          validity::strong_validity(params.n, params.t)};
  std::printf("strong consensus (n=7, t=2): %s\n",
              strong.analyze().summary().c_str());

  SystemParams tight{4, 2};
  AgreementProblem strong_2t{tight, validity::strong_validity(4, 2)};
  std::printf("strong consensus (n=4, t=2): %s\n",
              strong_2t.analyze().summary().c_str());

  // --- 4. Synthesize a solver via Algorithm 2 and run it. ----------------
  auto solver = strong.make_solver(/*authenticated=*/true, auth);
  if (solver) {
    std::vector<Value> mixed{Value::bit(0), Value::bit(0), Value::bit(1),
                             Value::bit(0), Value::bit(1), Value::bit(0),
                             Value::bit(0)};
    RunResult r2 = run_execution(params, *solver, mixed, Adversary::none());
    std::printf("synthesized solver decides %s on a mixed input\n",
                r2.unanimous_correct_decision()->to_string().c_str());
  }

  // --- 5. The Theorem 2 bound for this system. ----------------------------
  std::printf("\nany non-trivial agreement here needs >= t^2/32 = %llu "
              "messages in some execution (Theorems 2+3)\n",
              static_cast<unsigned long long>(
                  lowerbound::lemma1_bound(params.t)));
  return 0;
}
