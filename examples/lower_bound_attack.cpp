// Example: running the Theorem 2 attack engine against weak-consensus
// protocols.
//
// Usage: lower_bound_attack [n] [t]
//
// The engine rebuilds the executions of the paper's §3 (Table 1), finds the
// Lemma 4 critical round, merges per Lemma 5 / Figure 2, and — for any
// protocol cheaper than t^2/32 — produces a violation certificate: a
// concrete <= t-fault omission execution in which correct processes disagree
// (or a correct process never decides). The certificate is then re-verified
// by replaying every process's deterministic state machine.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/ba.h"

namespace {

void run_attack(const char* name, const ba::SystemParams& params,
                const ba::ProtocolFactory& protocol) {
  using namespace ba::lowerbound;
  std::printf("==== %s (n=%u, t=%u, bound t^2/32 = %llu) ====\n", name,
              params.n, params.t,
              static_cast<unsigned long long>(lemma1_bound(params.t)));
  AttackReport report = attack_weak_consensus(params, protocol);
  std::printf("%s", report.narrative.c_str());
  std::printf("max message complexity observed: %llu\n",
              static_cast<unsigned long long>(report.max_message_complexity));
  if (!report.violation_found) {
    std::printf("=> no violation: this protocol survives the attack "
                "(its cost clears the bound)\n\n");
    return;
  }
  const ViolationCertificate& cert = *report.certificate;
  std::printf("=> VIOLATION of %s\n", to_string(cert.kind).c_str());
  std::printf("   %s\n", cert.narrative.c_str());
  std::printf("   counterexample execution: %u rounds, %zu faulty\n",
              cert.execution.rounds, cert.execution.faulty.size());

  CertificateCheck check = verify_certificate(cert, protocol);
  std::printf("   certificate verification (full state-machine replay): %s\n",
              check.ok ? "OK" : check.error.c_str());

  // Show the concrete disagreement.
  if (cert.kind == ViolationKind::kAgreement) {
    const auto& a = cert.execution.procs[cert.witness_a];
    const auto& b = cert.execution.procs[cert.witness_b];
    std::printf("   correct p%u (proposal %s) decided %s\n", cert.witness_a,
                a.proposal.to_string().c_str(),
                a.decision->to_string().c_str());
    std::printf("   correct p%u (proposal %s) decided %s\n\n", cert.witness_b,
                b.proposal.to_string().c_str(),
                b.decision->to_string().c_str());
  } else {
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto n = static_cast<std::uint32_t>(argc > 1 ? std::atoi(argv[1])
                                                     : 12);
  const auto t = static_cast<std::uint32_t>(argc > 2 ? std::atoi(argv[2])
                                                     : n - 4);
  ba::SystemParams params{n, t};
  if (!params.valid() || t < 2) {
    std::fprintf(stderr, "need n > t >= 2\n");
    return 1;
  }

  run_attack("silent-default (0 messages)", params,
             ba::protocols::wc_candidate_silent(1));
  run_attack("leader-beacon (n-1 messages)", params,
             ba::protocols::wc_candidate_leader_beacon());
  run_attack("gossip-ring k=2 (O(n) messages)", params,
             ba::protocols::wc_candidate_gossip_ring(2, 3));

  auto auth = std::make_shared<ba::crypto::Authenticator>(2024, params.n);
  run_attack("Dolev-Strong weak consensus (CORRECT, Theta(n^2 t))", params,
             ba::protocols::weak_consensus_auth(auth));
  return 0;
}
