// Example: regenerate a compact "paper report" — the Theorem 2 sweep as a
// markdown table plus the Theorem 4 solvability landscape — suitable for
// pasting into an evaluation document.
//
// Usage: paper_report [n1 n2 ...]   (defaults: 12 24 48; t = n - 1)
//
// The sweep fans across all hardware cores (SweepOptions::jobs = 0); the
// table is bit-identical to a serial run per the docs/PARALLEL.md contract.

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/ba.h"
#include "lowerbound/sweep.h"

int main(int argc, char** argv) {
  using namespace ba;

  std::vector<SystemParams> grid;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      const auto n = static_cast<std::uint32_t>(std::atoi(argv[i]));
      if (n >= 3) grid.push_back(SystemParams{n, n - 1});
    }
  } else {
    grid = {{12, 11}, {24, 23}, {48, 47}};
  }

  std::printf("## Theorem 2 attack sweep\n\n");
  lowerbound::SweepOptions options;
  options.jobs = 0;  // all hardware cores
  auto sweep = lowerbound::run_attack_sweep(
      lowerbound::standard_sweep_entries(), grid, options);
  lowerbound::write_markdown(std::cout, sweep);
  std::printf("\n%zu points across %u workers in %.3fs\n",
              sweep.rows.size(), sweep.jobs_used,
              static_cast<double>(sweep.wall_micros) / 1e6);
  std::printf("Theorem 2 consistency (broken => verified certificate, "
              "surviving => messages >= bound): %s\n\n",
              sweep.theorem2_consistent() ? "HOLDS" : "VIOLATED");

  std::printf("## Theorem 4 solvability landscape\n\n");
  std::printf("| problem | n | t | verdict |\n|---|---|---|---|\n");
  struct Point {
    std::uint32_t n, t;
  };
  for (const Point pt : {Point{7, 2}, Point{5, 2}, Point{4, 2}}) {
    struct Named {
      const char* label;
      validity::ValidityProperty prop;
    };
    const Named props[] = {
        {"weak consensus", validity::weak_validity(pt.n, pt.t)},
        {"strong consensus", validity::strong_validity(pt.n, pt.t)},
        {"Byzantine broadcast", validity::sender_validity(pt.n, pt.t, 0)},
        {"any-proposed", validity::any_proposed_validity(pt.n, pt.t)},
    };
    for (const Named& named : props) {
      auto verdict = validity::solvability(named.prop, pt.n, pt.t);
      std::printf("| %s | %u | %u | %s |\n", named.label, pt.n, pt.t,
                  verdict.summary().c_str());
    }
  }
  return 0;
}
