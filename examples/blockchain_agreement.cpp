// Example: the blockchain-style agreement problem of §4.3 — External
// Validity — end to end.
//
//  * clients issue MAC-signed transactions;
//  * validators run the rotating-leader External-Validity agreement to
//    commit a chain of blocks, across healthy and faulty-leader regimes;
//  * a Byzantine leader proposing a forged transaction burns its view —
//    the chain only ever contains client-signed transactions;
//  * Corollary 1: because the protocol has two fault-free executions that
//    decide differently, weak consensus reduces to it with ZERO extra
//    messages — so the Omega(t^2) bound applies to it.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/ba.h"

namespace {

struct Client {
  ba::crypto::SipKey key;
  explicit Client(std::uint64_t id)
      : key(ba::crypto::derive_key(0xc11e47, id)) {}

  [[nodiscard]] ba::Value sign(const std::string& body) const {
    ba::Bytes bytes(body.begin(), body.end());
    return ba::Value::vec({ba::Value{"tx"}, ba::Value{body},
                           ba::Value{static_cast<std::int64_t>(
                               ba::crypto::siphash24(key, bytes))}});
  }
};

class Bank {
 public:
  explicit Bank(std::size_t num_clients) {
    for (std::size_t i = 0; i < num_clients; ++i) clients_.emplace_back(i);
  }

  [[nodiscard]] const Client& client(std::size_t i) const {
    return clients_[i];
  }

  /// The globally verifiable predicate: some registered client signed it.
  [[nodiscard]] bool valid(const ba::Value& v) const {
    if (!v.is_vec() || v.as_vec().size() != 3) return false;
    const ba::ValueVec& f = v.as_vec();
    if (!f[0].is_str() || f[0].as_str() != "tx" || !f[1].is_str() ||
        !f[2].is_int()) {
      return false;
    }
    ba::Bytes bytes(f[1].as_str().begin(), f[1].as_str().end());
    for (const Client& c : clients_) {
      if (ba::crypto::siphash24(c.key, bytes) ==
          static_cast<std::uint64_t>(f[2].as_int())) {
        return true;
      }
    }
    return false;
  }

 private:
  std::vector<Client> clients_;
};

}  // namespace

int main() {
  using namespace ba;
  const SystemParams params{7, 3};
  Bank bank(4);
  auto auth = std::make_shared<crypto::Authenticator>(42, params.n);
  auto agreement = protocols::external_validity_agreement(
      auth, [&bank](const Value& v) { return bank.valid(v); });

  std::printf("=== committing a 5-block chain (n=%u validators, t=%u) ===\n",
              params.n, params.t);
  std::vector<Value> chain;
  std::uint64_t total_msgs = 0;
  for (int blk = 0; blk < 5; ++blk) {
    // Each validator picks a pending client transaction to propose.
    std::vector<Value> proposals(params.n);
    for (ProcessId p = 0; p < params.n; ++p) {
      proposals[p] = bank.client(p % 4).sign(
          "transfer#" + std::to_string(blk) + "-" + std::to_string(p));
    }
    // Blocks 2 and 3 suffer crash-faulty leaders.
    Adversary adv;
    if (blk == 2 || blk == 3) {
      adv.faulty = ProcessSet{{0, 1}};
      adv.byzantine = adv.faulty;
      adv.byzantine_factory = byz_silent();
    }
    RunResult res = run_execution(params, agreement, proposals, adv);
    auto decided = res.unanimous_correct_decision();
    total_msgs += res.messages_sent_by_correct;
    std::printf("block %d: %-38s (%llu msgs, %u rounds%s)\n", blk,
                decided->as_vec()[1].as_str().c_str(),
                static_cast<unsigned long long>(res.messages_sent_by_correct),
                res.rounds_executed,
                adv.faulty.empty() ? "" : ", 2 leaders crashed");
    chain.push_back(*decided);
  }
  std::printf("chain committed; every block client-signed: %s\n",
              [&] {
                for (const Value& b : chain) {
                  if (!bank.valid(b)) return "NO";
                }
                return "yes";
              }());

  // --- Forged transaction attempt ----------------------------------------
  std::printf("\n=== Byzantine leader proposes a forged transaction ===\n");
  std::vector<Value> proposals(params.n, bank.client(0).sign("honest-tx"));
  Adversary adv;
  adv.faulty = ProcessSet{{0}};
  adv.byzantine = adv.faulty;
  adv.byzantine_factory = byz_lie_proposal(
      agreement, Value::vec({Value{"tx"}, Value{"forged-steal-funds"},
                             Value{1234567}}));
  RunResult res = run_execution(params, agreement, proposals, adv);
  auto d = res.unanimous_correct_decision();
  std::printf("decided: %s — forged tx %s\n",
              d->as_vec()[1].as_str().c_str(),
              bank.valid(*d) ? "rejected (view burned, honest tx committed)"
                             : "COMMITTED (bug!)");

  // --- Corollary 1 --------------------------------------------------------
  std::printf("\n=== Corollary 1: the Omega(t^2) bound applies here ===\n");
  const Value tx0 = bank.client(0).sign("unanimous-0");
  const Value tx1 = bank.client(1).sign("unanimous-1");
  RunResult r0 = run_all_correct(params, agreement, tx0);
  RunResult r1 = run_all_correct(params, agreement, tx1);
  std::printf("fault-free unanimous tx0 decides tx0: %s\n",
              *r0.unanimous_correct_decision() == tx0 ? "yes" : "no");
  std::printf("fault-free unanimous tx1 decides tx1: %s\n",
              *r1.unanimous_correct_decision() == tx1 ? "yes" : "no");

  auto wc = reductions::weak_from_external_validity(
      agreement, tx0, tx1, *r0.unanimous_correct_decision());
  RunResult wr = run_all_correct(params, wc, Value::bit(1));
  std::printf("weak consensus via the agreement protocol decides %s with %llu "
              "messages (solver alone: %llu — zero extra)\n",
              wr.unanimous_correct_decision()->to_string().c_str(),
              static_cast<unsigned long long>(wr.messages_sent_by_correct),
              static_cast<unsigned long long>(r1.messages_sent_by_correct));
  std::printf("hence any such blockchain agreement costs >= t^2/32 = %llu "
              "messages in the worst case (Theorem 2 + Corollary 1)\n",
              static_cast<unsigned long long>(
                  lowerbound::lemma1_bound(params.t)));
  return 0;
}
