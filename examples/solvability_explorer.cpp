// Example: the general solvability theorem (Theorem 4) as a tool.
//
// Prints the solvability landscape for the classic agreement problems across
// an (n, t) grid, then demonstrates defining a CUSTOM validity property and
// (a) getting its verdict, (b) synthesizing a working solver via Algorithm 2
// when it is solvable.

#include <cstdio>
#include <memory>

#include "core/ba.h"

namespace {

void print_row(const char* name, std::uint32_t n, std::uint32_t t,
               const ba::validity::SolvabilityVerdict& v) {
  std::printf("%-28s n=%2u t=%2u | %-11s | CC %-5s | auth %-10s | unauth %s\n",
              name, n, t, v.trivial ? "trivial" : "non-trivial",
              v.cc ? "yes" : "NO", v.authenticated_solvable ? "solvable" :
              "UNSOLVABLE",
              v.unauthenticated_solvable ? "solvable" : "UNSOLVABLE");
}

}  // namespace

int main() {
  using namespace ba;
  using namespace ba::validity;

  std::printf("=== Theorem 4: the solvability landscape ===\n\n");
  struct GridPoint {
    std::uint32_t n, t;
  };
  const GridPoint grid[] = {{7, 2}, {5, 2}, {4, 2}, {4, 3}};
  for (const auto& [n, t] : grid) {
    print_row("weak consensus", n, t, solvability(weak_validity(n, t), n, t));
    print_row("strong consensus", n, t,
              solvability(strong_validity(n, t), n, t));
    print_row("Byzantine broadcast (p0)", n, t,
              solvability(sender_validity(n, t, 0), n, t));
    print_row("any-proposed validity", n, t,
              solvability(any_proposed_validity(n, t), n, t));
    print_row("constant (trivial)", n, t,
              solvability(constant_validity(n, t), n, t));
    std::printf("\n");
  }
  print_row("interactive consistency", 4, 1,
            solvability(ic_validity(4, 1), 4, 1));

  // --- A custom problem: "parity agreement" ------------------------------
  // Decide a bit equal to the XOR of the proposals of ALL processes — when
  // every process is correct; otherwise anything goes. Non-trivial (each
  // bit is excluded by some fault-free configuration), and CC holds: a
  // configuration only contains full configurations if it is itself full.
  std::printf("\n=== Custom property: parity agreement ===\n");
  const std::uint32_t n = 5, t = 1;
  ValidityProperty parity;
  parity.name = "parity-validity";
  parity.input_domain = binary_domain();
  parity.output_domain = binary_domain();
  parity.admissible = [n](const InputConfig& c, const Value& v) {
    if (c.num_correct() != n) return true;  // faults: anything goes
    int x = 0;
    for (std::size_t i = 0; i < n; ++i) x ^= c[i]->try_bit().value_or(0);
    return v == Value::bit(x);
  };

  SystemParams params{n, t};
  AgreementProblem problem{params, parity};
  auto verdict = problem.analyze();
  print_row("parity agreement", n, t, verdict);

  auto auth = std::make_shared<crypto::Authenticator>(7, n);
  auto solver = problem.make_solver(/*authenticated=*/true, auth);
  if (solver) {
    std::vector<Value> proposals{Value::bit(1), Value::bit(0), Value::bit(1),
                                 Value::bit(1), Value::bit(0)};
    RunResult res = run_execution(params, *solver, proposals,
                                  Adversary::none());
    std::printf("synthesized solver (Algorithm 2 over IC) decides %s on "
                "1,0,1,1,0 (XOR = 1)\n",
                res.unanimous_correct_decision()->to_string().c_str());
    if (auto err = problem.check_execution(res.trace)) {
      std::printf("validity check FAILED: %s\n", err->c_str());
    } else {
      std::printf("validity check passed: decision admissible\n");
    }
  }

  // --- An UNSOLVABLE custom problem ---------------------------------------
  // "Exact majority": decide the bit proposed by a strict majority of
  // correct processes — with n = 4, t = 2 the half/half split kills CC.
  std::printf("\n=== Custom property: strict-majority at n=4, t=2 ===\n");
  ValidityProperty majority;
  majority.name = "strict-majority";
  majority.input_domain = binary_domain();
  majority.output_domain = binary_domain();
  majority.admissible = [](const InputConfig& c, const Value& v) {
    std::size_t ones = 0, total = 0;
    for (std::size_t i = 0; i < c.n(); ++i) {
      if (!c[i].has_value()) continue;
      ++total;
      ones += static_cast<std::size_t>(c[i]->try_bit().value_or(0));
    }
    if (2 * ones > total) return v == Value::bit(1);
    if (2 * ones < total) return v == Value::bit(0);
    return true;
  };
  AgreementProblem mproblem{SystemParams{4, 2}, majority};
  auto mverdict = mproblem.analyze();
  print_row("strict-majority", 4, 2, mverdict);
  if (mverdict.cc_witness) {
    std::printf("CC fails at configuration %s: no value is admissible for "
                "everything it contains\n",
                mverdict.cc_witness->to_value().to_string().c_str());
  }
  std::printf("make_solver returns %s\n",
              mproblem.make_solver(true, auth) ? "a solver (?)" : "nothing, "
              "as Theorem 4 demands");
  return 0;
}
