#!/usr/bin/env python3
"""Static scan for replay-determinism hazards in the executable core.

The linter's determinism invariant (docs/ANALYSIS.md, A.1) replays every
process against its recorded receive history and requires bit-identical
behaviour. That only holds if protocol and runtime code never consults a
source of nondeterminism. This checker greps src/protocols/ and src/runtime/
for the constructs that have historically broken replay in message-passing
simulators. src/service/ is scanned too: campaign rows must be pure
functions of (spec, task) for the sharded-equals-serial merge guarantee, so
the same hazards apply (wall-clock reads in the coordinator's control plane
are waived explicitly — they steer scheduling, never row bytes):

  * unordered associative containers — iteration order depends on hashing
    and allocation, so any loop over one can reorder outboxes between runs;
  * rand()/srand()/std::random_device — hidden global or hardware entropy;
  * std::chrono::*_clock::now() — wall-clock reads leak real time into
    logical-round code;
  * pointer-value ordering (std::less<T*>, casts to uintptr_t for
    comparison) — address-space layout becomes observable.

A hit is not automatically a bug, but it must be deliberate: silence a
reviewed line with a `// determinism: <why this is safe>` comment on the
same line. The check runs as a tier-1 ctest, so a new hazard fails CI until
it is either removed or justified.

Usage: check_determinism.py [repo_root]
Exit status: 0 when clean, 1 when hazards are found, 2 on usage errors.
"""

import re
import sys
from pathlib import Path

SCANNED_DIRS = ("src/protocols", "src/runtime", "src/service", "src/faults")
SOURCE_SUFFIXES = {".h", ".cpp"}
WAIVER = re.compile(r"//\s*determinism:")

HAZARDS = (
    (re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\b"),
     "unordered container: iteration order is not replay-stable"),
    (re.compile(r"(?<![\w:])s?rand\s*\("),
     "C rand()/srand(): hidden global RNG state"),
    (re.compile(r"\bstd::random_device\b"),
     "std::random_device: hardware entropy is not replayable"),
    (re.compile(r"\bstd::chrono::\w+::now\s*\("),
     "wall-clock now(): real time leaks into logical-round code"),
    (re.compile(r"\bstd::less<[^<>]*\*\s*>"),
     "pointer-value ordering: address layout becomes observable"),
    (re.compile(r"\breinterpret_cast<\s*(?:std::)?u?intptr_t\b"),
     "pointer-to-integer cast: address layout becomes observable"),
)


def scan_file(path: Path) -> list:
    findings = []
    text = path.read_text(encoding="utf-8", errors="replace")
    for lineno, line in enumerate(text.splitlines(), start=1):
        if WAIVER.search(line):
            continue
        for pattern, reason in HAZARDS:
            if pattern.search(line):
                findings.append((path, lineno, reason, line.strip()))
    return findings


def main(argv: list) -> int:
    if len(argv) > 2:
        print(__doc__.strip().splitlines()[-2], file=sys.stderr)
        return 2
    root = Path(argv[1]) if len(argv) == 2 else Path(__file__).resolve().parent.parent
    findings = []
    scanned = 0
    for rel in SCANNED_DIRS:
        base = root / rel
        if not base.is_dir():
            print(f"check_determinism: missing directory {base}", file=sys.stderr)
            return 2
        for path in sorted(base.rglob("*")):
            if path.suffix in SOURCE_SUFFIXES:
                scanned += 1
                findings.extend(scan_file(path))
    if findings:
        for path, lineno, reason, line in findings:
            print(f"{path.relative_to(root)}:{lineno}: {reason}\n    {line}")
        print(f"\ncheck_determinism: {len(findings)} hazard(s) in {scanned} "
              "file(s); remove it or waive the line with "
              "'// determinism: <why this is safe>'")
        return 1
    print(f"check_determinism: {scanned} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
