# Saves an execution trace with ba_cli, audits it with lint_trace (clean and
# with the determinism replay), then checks that a corrupted file is rejected.
set(trace "${WORKDIR}/phase_king.trace")
execute_process(COMMAND ${CLI} run phase-king 4 1 0 1 1 1
                        --save-trace ${trace}
                RESULT_VARIABLE rc1)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "run --save-trace failed: ${rc1}")
endif()

execute_process(COMMAND ${LINTER} ${trace} RESULT_VARIABLE rc2)
if(NOT rc2 EQUAL 0)
  message(FATAL_ERROR "lint_trace on a genuine trace failed: ${rc2}")
endif()

execute_process(COMMAND ${LINTER} ${trace} --protocol phase-king
                RESULT_VARIABLE rc3)
if(NOT rc3 EQUAL 0)
  message(FATAL_ERROR "lint_trace with replay failed: ${rc3}")
endif()

# Corrupting the file must produce a decode error (exit 3), not a crash or a
# silently clean report. The canonical serde rejects trailing bytes.
set(corrupt "${WORKDIR}/phase_king.corrupt")
file(COPY_FILE ${trace} ${corrupt})
file(APPEND ${corrupt} "garbage-tail")
execute_process(COMMAND ${LINTER} ${corrupt} RESULT_VARIABLE rc4)
if(NOT rc4 EQUAL 3)
  message(FATAL_ERROR "lint_trace on a corrupted trace: want 3, got ${rc4}")
endif()
