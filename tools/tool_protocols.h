#pragma once

// Protocol registry shared by the command-line tools (ba_cli, lint_trace).
// The actual name -> factory table lives in src/protocols/registry.{h,cpp}
// so the campaign service (src/service/) resolves the same names the same
// way; this header keeps the historical tools-facing spelling.

#include <optional>
#include <string>

#include "core/ba.h"

namespace ba::tools {

inline std::optional<ProtocolFactory> make_protocol(const std::string& name,
                                                    std::uint32_t n) {
  return protocols::make_protocol_by_name(name, n);
}

inline const char* protocol_names() {
  return protocols::registered_protocol_names();
}

}  // namespace ba::tools
