#pragma once

// Protocol registry shared by the command-line tools (ba_cli, lint_trace):
// maps the stable names exposed on the CLI surface to protocol factories.

#include <memory>
#include <optional>
#include <string>

#include "core/ba.h"

namespace ba::tools {

inline std::optional<ProtocolFactory> make_protocol(const std::string& name,
                                                    std::uint32_t n) {
  if (name == "silent") return protocols::wc_candidate_silent(1);
  if (name == "beacon") return protocols::wc_candidate_leader_beacon();
  if (name == "gossip") return protocols::wc_candidate_gossip_ring(2, 3);
  if (name == "one-shot-echo") return protocols::wc_candidate_one_shot_echo();
  if (name == "ds-weak") {
    auto auth = std::make_shared<crypto::Authenticator>(0xc11, n);
    return protocols::weak_consensus_auth(auth);
  }
  if (name == "phase-king") return protocols::weak_consensus_unauth();
  if (name == "phase-king-strong") return protocols::phase_king_consensus();
  if (name == "floodset") return protocols::floodset_consensus();
  if (name == "eig-strong") return protocols::eig_strong_consensus();
  return std::nullopt;
}

inline const char* protocol_names() {
  return "silent beacon gossip one-shot-echo ds-weak phase-king "
         "phase-king-strong floodset eig-strong";
}

}  // namespace ba::tools
