// stamp_trace — re-stamp the provenance of a serialized execution trace.
//
//   stamp_trace <IN> <OUT> <backend> [model] [seed] [round_ticks]
//
// Decodes IN (schema v1 or v2), replaces its provenance with the vector
// [backend, model, seed, round_ticks], and writes OUT as a schema-v2 trace.
// Exists for audit tooling and tests: it lets a pipeline label (or
// mislabel) the execution substrate a trace claims to come from, so the
// lint_trace registry check can be exercised end-to-end.
//
// Exit codes: 0 = OK; 2 = usage error; 3 = IN cannot be read or decoded;
// 1 = OUT cannot be written.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <optional>
#include <string>

#include "runtime/trace_io.h"

namespace {

using namespace ba;

std::optional<Bytes> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  Bytes bytes((std::istreambuf_iterator<char>(in)),
              std::istreambuf_iterator<char>());
  return bytes;
}

bool write_file(const std::string& path, const Bytes& bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: stamp_trace <IN> <OUT> <backend> [model] [seed] "
                 "[round_ticks]\n");
    return 2;
  }
  const std::string in_path = argv[1];
  const std::string out_path = argv[2];
  const std::string backend = argv[3];
  const std::string model = argc > 4 ? argv[4] : "sync";
  const std::int64_t seed = argc > 5 ? std::atoll(argv[5]) : 0;
  const std::int64_t round_ticks = argc > 6 ? std::atoll(argv[6]) : 0;

  auto bytes = read_file(in_path);
  if (!bytes) {
    std::fprintf(stderr, "stamp_trace: cannot read %s\n", in_path.c_str());
    return 3;
  }
  std::string decode_error;
  auto trace = decode_trace(*bytes, &decode_error);
  if (!trace) {
    std::fprintf(stderr, "stamp_trace: %s is not a valid trace: %s\n",
                 in_path.c_str(), decode_error.c_str());
    return 3;
  }
  const Value provenance = Value::vec(
      {Value{backend}, Value{model}, Value{seed}, Value{round_ticks}});
  if (!write_file(out_path, encode_trace_with_provenance(*trace, provenance))) {
    std::fprintf(stderr, "stamp_trace: failed to write %s\n",
                 out_path.c_str());
    return 1;
  }
  return 0;
}
