#!/usr/bin/env python3
"""Perf-regression gate over the committed BENCH_*.json baselines.

Compares a freshly generated bench report against the committed baseline of
the same name at the repo root and fails when throughput got meaningfully
worse. Three report schemas are understood, dispatched on the report's
"experiment" field:

  runtime_throughput   (BENCH_runtime.json, bench/bench_runtime.cpp)
      per-(protocol, n) rows; gates msgs_per_sec drop > --max-throughput-drop
      (default 30%) and peak_rss_kb growth > --max-rss-growth (default 50%).
      The workload-shape counters (rounds_per_run, msgs_per_run) must match
      the baseline exactly.

  theorem2_attack_sweep  (BENCH_sweep.json, `ba_cli sweep --json`)
      whole-run throughput; gates points_per_sec drop and requires
      theorem2_consistent to stay true. Shape fields: points, jobs.

  service_campaign     (BENCH_service.json, `ba_cli serve --bench`,
                        bench/bench_service.cpp)
      whole-campaign throughput; gates rows_per_sec drop. Shape fields:
      specs, workers.

The shape rule is the same everywhere: if the workload itself drifted,
throughput numbers are not comparable and the baseline must be consciously
regenerated. Rows/operating points present only in the candidate pass; ones
present only in the baseline fail, since silently dropping an operating
point is how regressions hide.

Waiver: pass --waive, or run with the HEAD commit message containing the tag
[bench-reset] (checked via git when --git-waiver is given). A waived run
still prints the full comparison but always exits 0 — the intended use is a
commit that deliberately regenerates a baseline on different hardware.

Usage:
  check_bench_regression.py CANDIDATE [--baseline PATH] [--git-waiver]
The default --baseline is <repo root>/<basename of CANDIDATE>.
Exit status: 0 = within budget (or waived), 1 = regression, 2 = usage error.
"""

import argparse
import json
import subprocess
import sys
from pathlib import Path

WAIVER_TAG = "[bench-reset]"
REPO_ROOT = Path(__file__).resolve().parent.parent
KNOWN_EXPERIMENTS = ("runtime_throughput", "theorem2_attack_sweep",
                     "service_campaign")


def load_report(path: Path) -> dict:
    try:
        with path.open() as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"error: cannot read {path}: {exc}")
    if doc.get("experiment") not in KNOWN_EXPERIMENTS:
        sys.exit(f"error: {path} has unknown experiment "
                 f"{doc.get('experiment')!r} (want one of "
                 f"{', '.join(KNOWN_EXPERIMENTS)})")
    return doc


def head_commit_waives(repo_root: Path) -> bool:
    try:
        msg = subprocess.run(
            ["git", "-C", str(repo_root), "log", "-1", "--format=%B"],
            capture_output=True, text=True, check=True).stdout
    except (OSError, subprocess.CalledProcessError):
        return False
    return WAIVER_TAG in msg


def check_throughput(label, base_tp, cand_tp, budget, failures):
    """Shared drop rule; prints one comparison line, records a failure."""
    ratio = cand_tp / base_tp if base_tp > 0 else float("inf")
    verdict = "ok"
    if ratio < 1.0 - budget:
        verdict = "THROUGHPUT REGRESSION"
        failures.append(
            f"{label}: {base_tp:.0f} -> {cand_tp:.0f} "
            f"({(1.0 - ratio) * 100:.1f}% drop > {budget * 100:.0f}% budget)")
    print(f"  {label:<32} {base_tp:>12.0f} -> {cand_tp:>12.0f} "
          f"({ratio:6.2f}x)  {verdict}")


def check_shape(label, field, base_val, cand_val, failures):
    if base_val != cand_val:
        failures.append(
            f"{label}: workload drift — {field} {base_val} -> {cand_val} "
            "(regenerate the baseline deliberately)")


def gate_runtime(baseline: dict, candidate: dict, args) -> list:
    base_rows = {(r["protocol"], r["n"]): r for r in baseline["rows"]}
    cand_rows = {(r["protocol"], r["n"]): r for r in candidate["rows"]}
    failures = []
    for key in sorted(base_rows):
        label = f"{key[0]} n={key[1]} msgs/s"
        if key not in cand_rows:
            failures.append(f"{label}: row missing from candidate report")
            continue
        base, cand = base_rows[key], cand_rows[key]
        for shape in ("rounds_per_run", "msgs_per_run"):
            check_shape(label, shape, base[shape], cand[shape], failures)
        check_throughput(label, base["msgs_per_sec"], cand["msgs_per_sec"],
                         args.max_throughput_drop, failures)
        base_rss, cand_rss = base["peak_rss_kb"], cand["peak_rss_kb"]
        if base_rss > 0 and cand_rss > base_rss * (1.0 + args.max_rss_growth):
            failures.append(
                f"{label}: peak_rss_kb {base_rss:.0f} -> {cand_rss:.0f} "
                f"(> {args.max_rss_growth * 100:.0f}% growth budget)")
    for key in sorted(set(cand_rows) - set(base_rows)):
        print(f"  {key[0]} n={key[1]:<18} new operating point (no baseline)")
    return failures


def gate_sweep(baseline: dict, candidate: dict, args) -> list:
    failures = []
    label = "attack sweep points/s"
    for shape in ("points", "jobs"):
        check_shape(label, shape, baseline[shape], candidate[shape], failures)
    # A fault-axis sweep runs t+1 executions per point — a different
    # workload, gated only against a baseline swept on the same axis.
    # Reports predating the field read as axis-less (None == null).
    check_shape(label, "fault_axis", baseline.get("fault_axis"),
                candidate.get("fault_axis"), failures)
    check_throughput(label, baseline["points_per_sec"],
                     candidate["points_per_sec"],
                     args.max_throughput_drop, failures)
    if not candidate.get("theorem2_consistent", False):
        failures.append(f"{label}: theorem2_consistent is false — the sweep "
                        "itself is broken, not just slow")
    return failures


def gate_service(baseline: dict, candidate: dict, args) -> list:
    failures = []
    label = f"campaign '{candidate.get('campaign', '?')}' rows/s"
    for shape in ("specs", "workers"):
        check_shape(label, shape, baseline[shape], candidate[shape], failures)
    check_throughput(label, baseline["rows_per_sec"],
                     candidate["rows_per_sec"],
                     args.max_throughput_drop, failures)
    return failures


GATES = {
    "runtime_throughput": gate_runtime,
    "theorem2_attack_sweep": gate_sweep,
    "service_campaign": gate_service,
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("candidate", type=Path,
                        help="freshly generated BENCH_*.json report")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="committed baseline (default: the repo-root "
                        "file with the candidate's basename)")
    parser.add_argument("--max-throughput-drop", type=float, default=0.30,
                        help="fractional throughput drop allowed")
    parser.add_argument("--max-rss-growth", type=float, default=0.50,
                        help="fractional peak_rss_kb growth allowed "
                        "(runtime_throughput only)")
    parser.add_argument("--waive", action="store_true",
                        help="report but never fail")
    parser.add_argument("--git-waiver", action="store_true",
                        help=f"also waive when HEAD's message has {WAIVER_TAG}")
    args = parser.parse_args()

    baseline_path = args.baseline or REPO_ROOT / args.candidate.name
    baseline = load_report(baseline_path)
    candidate = load_report(args.candidate)
    if baseline["experiment"] != candidate["experiment"]:
        sys.exit(f"error: schema mismatch — baseline is "
                 f"{baseline['experiment']}, candidate is "
                 f"{candidate['experiment']}")

    waived = args.waive
    if not waived and args.git_waiver:
        waived = head_commit_waives(baseline_path.resolve().parent)
        if waived:
            print(f"note: HEAD commit carries {WAIVER_TAG}; "
                  "reporting only, not gating")

    failures = GATES[baseline["experiment"]](baseline, candidate, args)

    if failures:
        print(f"\n{len(failures)} regression(s) vs {baseline_path}:")
        for f in failures:
            print(f"  FAIL: {f}")
        if waived:
            print("waived: exiting 0")
            return 0
        print(f"\nIf this change deliberately rebases perf (new hardware, "
              f"regenerated baseline), commit with {WAIVER_TAG} in the "
              "message or pass --waive.")
        return 1

    print("\nall rows within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
