#!/usr/bin/env python3
"""Perf-regression gate over BENCH_runtime.json.

Compares a freshly generated runtime-throughput bench report against the
committed baseline at the repo root and fails when any (protocol, n) row got
meaningfully worse:

  * msgs_per_sec dropped by more than --max-throughput-drop (default 30%), or
  * peak_rss_kb grew by more than --max-rss-growth (default 50%).

peak_rss_kb is a process-wide high-water mark (see bench/bench_runtime.cpp),
so the RSS check is applied per row but is really a coarse whole-binary
footprint guard. Rows present only in the candidate (new operating points,
e.g. a freshly added n) pass; rows present only in the baseline fail, since
silently dropping an operating point is how regressions hide.

The workload-shape counters (rounds_per_run, msgs_per_run) must match the
baseline exactly: if the workload itself drifted, throughput numbers are not
comparable and the baseline must be consciously regenerated.

Waiver: pass --waive, or run with the HEAD commit message containing the tag
[bench-reset] (checked via git when --git-waiver is given). A waived run
still prints the full comparison but always exits 0 — the intended use is a
commit that deliberately regenerates the baseline on different hardware.

Usage:
  check_bench_regression.py CANDIDATE [--baseline PATH] [--git-waiver]
Exit status: 0 = within budget (or waived), 1 = regression, 2 = usage error.
"""

import argparse
import json
import subprocess
import sys
from pathlib import Path

WAIVER_TAG = "[bench-reset]"


def load_rows(path: Path) -> dict:
    try:
        with path.open() as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"error: cannot read {path}: {exc}")
    if doc.get("experiment") != "runtime_throughput":
        sys.exit(f"error: {path} is not a runtime_throughput report")
    return {(row["protocol"], row["n"]): row for row in doc["rows"]}


def head_commit_waives(repo_root: Path) -> bool:
    try:
        msg = subprocess.run(
            ["git", "-C", str(repo_root), "log", "-1", "--format=%B"],
            capture_output=True, text=True, check=True).stdout
    except (OSError, subprocess.CalledProcessError):
        return False
    return WAIVER_TAG in msg


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("candidate", type=Path,
                        help="freshly generated BENCH_runtime.json")
    parser.add_argument("--baseline", type=Path,
                        default=Path(__file__).resolve().parent.parent /
                        "BENCH_runtime.json",
                        help="committed baseline (default: repo root copy)")
    parser.add_argument("--max-throughput-drop", type=float, default=0.30,
                        help="fractional msgs_per_sec drop allowed per row")
    parser.add_argument("--max-rss-growth", type=float, default=0.50,
                        help="fractional peak_rss_kb growth allowed per row")
    parser.add_argument("--waive", action="store_true",
                        help="report but never fail")
    parser.add_argument("--git-waiver", action="store_true",
                        help=f"also waive when HEAD's message has {WAIVER_TAG}")
    args = parser.parse_args()

    baseline = load_rows(args.baseline)
    candidate = load_rows(args.candidate)

    waived = args.waive
    if not waived and args.git_waiver:
        waived = head_commit_waives(args.baseline.resolve().parent)
        if waived:
            print(f"note: HEAD commit carries {WAIVER_TAG}; "
                  "reporting only, not gating")

    failures = []
    for key in sorted(baseline):
        proto, n = key
        label = f"{proto} n={n}"
        if key not in candidate:
            failures.append(f"{label}: row missing from candidate report")
            continue
        base, cand = baseline[key], candidate[key]

        for shape in ("rounds_per_run", "msgs_per_run"):
            if abs(base[shape] - cand[shape]) > 1e-9:
                failures.append(
                    f"{label}: workload drift — {shape} "
                    f"{base[shape]} -> {cand[shape]} "
                    "(regenerate the baseline deliberately)")

        base_tp, cand_tp = base["msgs_per_sec"], cand["msgs_per_sec"]
        ratio = cand_tp / base_tp if base_tp > 0 else float("inf")
        verdict = "ok"
        if ratio < 1.0 - args.max_throughput_drop:
            verdict = "THROUGHPUT REGRESSION"
            failures.append(
                f"{label}: msgs_per_sec {base_tp:.0f} -> {cand_tp:.0f} "
                f"({(1.0 - ratio) * 100:.1f}% drop > "
                f"{args.max_throughput_drop * 100:.0f}% budget)")
        print(f"  {label:<24} msgs/s {base_tp:>12.0f} -> {cand_tp:>12.0f} "
              f"({ratio:6.2f}x)  {verdict}")

        base_rss, cand_rss = base["peak_rss_kb"], cand["peak_rss_kb"]
        if base_rss > 0 and cand_rss > base_rss * (1.0 + args.max_rss_growth):
            failures.append(
                f"{label}: peak_rss_kb {base_rss:.0f} -> {cand_rss:.0f} "
                f"(> {args.max_rss_growth * 100:.0f}% growth budget)")

    for key in sorted(set(candidate) - set(baseline)):
        print(f"  {key[0]} n={key[1]:<18} new operating point (no baseline)")

    if failures:
        print(f"\n{len(failures)} regression(s) vs {args.baseline}:")
        for f in failures:
            print(f"  FAIL: {f}")
        if waived:
            print("waived: exiting 0")
            return 0
        print(f"\nIf this change deliberately rebases perf (new hardware, "
              f"regenerated baseline), commit with {WAIVER_TAG} in the "
              "message or pass --waive.")
        return 1

    print("\nall rows within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
