# Saves an attack certificate with the CLI, then re-verifies it from disk.
set(cert "${WORKDIR}/beacon.cert")
execute_process(COMMAND ${CLI} attack beacon 12 8 --save ${cert}
                RESULT_VARIABLE rc1)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "attack --save failed: ${rc1}")
endif()
execute_process(COMMAND ${CLI} verify ${cert} beacon RESULT_VARIABLE rc2)
if(NOT rc2 EQUAL 0)
  message(FATAL_ERROR "verify failed: ${rc2}")
endif()
