# Runs a protocol through the simulator CLI under each link model, saves a
# schema-v2 trace (with provenance), and audits it with lint_trace — both
# structurally and with the determinism replay. This pins the end-to-end
# pipeline: sim substrate -> v2 serialization -> analysis linter.
set(trace "${WORKDIR}/sim_phase_king.trace")

execute_process(COMMAND ${CLI} sim phase-king 4 1 0 1 1 1
                RESULT_VARIABLE rc1)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "sim (sync model) failed: ${rc1}")
endif()

execute_process(COMMAND ${CLI} sim phase-king 4 1 0 1 1 1
                        --model jitter --seed 7 --save-trace ${trace}
                RESULT_VARIABLE rc2)
if(NOT rc2 EQUAL 0)
  message(FATAL_ERROR "sim (jitter model) --save-trace failed: ${rc2}")
endif()

execute_process(COMMAND ${LINTER} ${trace} RESULT_VARIABLE rc3
                OUTPUT_VARIABLE lint_out)
if(NOT rc3 EQUAL 0)
  message(FATAL_ERROR "lint_trace on a sim trace failed: ${rc3}")
endif()
if(NOT lint_out MATCHES "provenance")
  message(FATAL_ERROR "lint_trace did not report v2 provenance:\n${lint_out}")
endif()

execute_process(COMMAND ${LINTER} ${trace} --protocol phase-king
                RESULT_VARIABLE rc4)
if(NOT rc4 EQUAL 0)
  message(FATAL_ERROR "lint_trace replay on a sim trace failed: ${rc4}")
endif()

execute_process(COMMAND ${CLI} sim phase-king 7 2 0 1 0 1 0 1 0
                        --model gst --gst 3 --lag 2 --seed 11
                RESULT_VARIABLE rc5)
if(NOT rc5 EQUAL 0)
  message(FATAL_ERROR "sim (gst model) failed: ${rc5}")
endif()
