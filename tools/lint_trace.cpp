// lint_trace — standalone auditor for serialized execution traces.
//
//   lint_trace <FILE> [--protocol NAME] [--quiet]
//
// Decodes a trace written in the library's canonical byte format (see
// runtime/trace_io.h) and runs the execution-invariant linter over it:
// structure, message conservation, adversary-budget accounting, quiescence —
// plus the determinism replay when --protocol names the state machine the
// trace claims to be an execution of. This lets certificate artifacts
// produced by the lower-bound engine be audited independently of the process
// that produced them.
//
// Schema-v2 traces carry producer provenance whose first element names the
// execution backend that produced the trace; a name the engine::Registry
// does not know marks the artifact as coming from an unrecognized substrate
// and fails the audit.
//
// Exit codes: 0 = trace lints clean; 1 = violations found or unknown
// provenance backend; 2 = usage error; 3 = the file cannot be read or
// decoded.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <optional>
#include <string>

#include "analysis/lint.h"
#include "engine/registry.h"
#include "tool_protocols.h"

namespace {

using namespace ba;

int usage() {
  std::fprintf(stderr,
               "usage: lint_trace <FILE> [--protocol NAME] [--quiet]\n"
               "protocols: %s\n",
               tools::protocol_names());
  return 2;
}

std::optional<Bytes> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  Bytes bytes((std::istreambuf_iterator<char>(in)),
              std::istreambuf_iterator<char>());
  return bytes;
}

}  // namespace

int main(int argc, char** argv) {
  std::string file;
  std::string protocol_name;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--protocol") == 0 && i + 1 < argc) {
      protocol_name = argv[++i];
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (file.empty() && argv[i][0] != '-') {
      file = argv[i];
    } else {
      return usage();
    }
  }
  if (file.empty()) return usage();

  auto bytes = read_file(file);
  if (!bytes) {
    std::fprintf(stderr, "lint_trace: cannot read %s\n", file.c_str());
    return 3;
  }
  std::string decode_error;
  Value provenance = Value::null();
  auto trace = decode_trace(*bytes, &decode_error, &provenance);
  if (!trace) {
    std::fprintf(stderr, "lint_trace: %s is not a valid trace: %s\n",
                 file.c_str(), decode_error.c_str());
    return 3;
  }

  // Audit v2 provenance against the backend registry before linting: a
  // trace claiming an unknown execution substrate is suspect regardless of
  // its invariants.
  bool provenance_ok = true;
  std::string backend_name;
  if (const Value& prov = provenance; !prov.is_null()) {
    backend_name = prov.is_vec() && !prov.as_vec().empty() &&
                           prov.as_vec().front().is_str()
                       ? prov.as_vec().front().as_str()
                       : std::string{};
    if (backend_name.empty() ||
        !ba::engine::Registry::global().knows(backend_name)) {
      provenance_ok = false;
      std::fprintf(stderr,
                   "lint_trace: provenance names unknown execution backend "
                   "'%s' (registered: ",
                   backend_name.c_str());
      bool first = true;
      for (const std::string& known : ba::engine::Registry::global().names()) {
        std::fprintf(stderr, "%s%s", first ? "" : " ", known.c_str());
        first = false;
      }
      std::fprintf(stderr, ")\n");
    }
  }

  // Async-backend traces use the virtual-round encoding: lint under the
  // async invariant semantics, and skip the synchronous determinism replay
  // (--protocol names a round-based state machine; async processes are
  // message-driven, so the replay vocabulary does not apply).
  analysis::LintOptions options;
  options.async_model = backend_name == "async";
  if (options.async_model && !protocol_name.empty()) {
    std::fprintf(stderr,
                 "lint_trace: warning: --protocol ignored for async-backend "
                 "traces (no synchronous replay of message-driven "
                 "processes)\n");
    protocol_name.clear();
  }

  analysis::LintReport report;
  if (!protocol_name.empty()) {
    auto protocol = tools::make_protocol(protocol_name, trace->params.n);
    if (!protocol) {
      std::fprintf(stderr, "lint_trace: unknown protocol %s\n",
                   protocol_name.c_str());
      return usage();
    }
    report = analysis::lint_execution(*trace, *protocol, options);
  } else {
    report = analysis::lint_trace(*trace, options);
  }

  if (!quiet) {
    if (!provenance.is_null()) {
      // Schema-v2 traces (e.g. written by `ba_cli sim --save-trace`) carry
      // a producer-provenance vector; show it so audits can tell execution
      // substrates apart.
      std::printf("provenance: %s\n", provenance.to_string().c_str());
    }
    std::printf("trace: n=%u t=%u rounds=%u |F|=%zu quiesced=%s\n",
                trace->params.n, trace->params.t, trace->rounds,
                trace->faulty.size(), trace->quiesced ? "yes" : "no");
    std::printf("messages (correct senders): %llu\n",
                static_cast<unsigned long long>(trace->message_complexity()));
    std::cout << report << '\n';
  } else {
    std::cout << report.summary() << '\n';
  }
  return report.clean() && provenance_ok ? 0 : 1;
}
