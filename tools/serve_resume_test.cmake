# The headline acceptance test for the campaign service, against the real
# CLI with real forked worker processes:
#
#   1. single-shot serial reference run
#   2. sharded run whose workers SIGKILL themselves mid-lease with a zero
#      respawn budget -> the campaign must abort (nonzero exit) resumably
#   3. resume with a DIFFERENT worker count -> must complete
#   4. merged results.ndjson must be byte-identical to the serial reference
#   5. poison one cache line -> a re-serve must reject it, recompute the
#      task, and still reproduce the identical bytes
#
# Invoked from tools/CMakeLists.txt as:
#   cmake -DCLI=<ba_cli> -DWORKDIR=<dir> -P serve_resume_test.cmake

set(dir "${WORKDIR}/serve_resume")
file(REMOVE_RECURSE "${dir}")
file(MAKE_DIRECTORY "${dir}")

set(campaign "${dir}/campaign.json")
file(WRITE "${campaign}"
"{\n"
"  \"name\": \"resume-smoke\",\n"
"  \"master_seed\": 77,\n"
"  \"protocols\": [\"phase-king\", \"floodset\"],\n"
"  \"grid\": [\"4:1\", \"7:2\"],\n"
"  \"backends\": [\"lockstep\"],\n"
"  \"faults\": [\"fault-free\", \"crash:1\"],\n"
"  \"seeds\": 4\n"
"}\n")

# 1. Serial single-shot reference.
set(reference "${dir}/reference.ndjson")
execute_process(COMMAND ${CLI} serve "${campaign}" --serial "${reference}"
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serial reference run failed: ${rc}")
endif()

# 2. Sharded run with self-killing workers and no respawn budget: the
# coordinator must give up with a nonzero exit and a resumable state dir.
set(state "${dir}/state")
execute_process(COMMAND ${CLI} serve "${campaign}" --state "${state}"
                        --workers 2 --die-after 3 --respawns 0 --quiet
                RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR "kill run unexpectedly succeeded (die-after ignored?)")
endif()
if(NOT EXISTS "${state}/campaign.json")
  message(FATAL_ERROR "aborted run left no resumable state dir")
endif()

# 3. Resume with a different worker count (re-sharding the remainder).
execute_process(COMMAND ${CLI} serve "${campaign}" --state "${state}"
                        --workers 3 --quiet
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "resume failed: ${rc}")
endif()

# 4. The killed+resumed+re-sharded campaign must be byte-identical to the
# uninterrupted single-shot run.
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        "${state}/results.ndjson" "${reference}"
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "resumed results.ndjson differs from the serial reference")
endif()

# 5. Cache-poisoning defense: append a forged row to the result cache and
# re-serve. decode_row authentication must reject it and the merged bytes
# must be unchanged.
file(APPEND "${state}/cache.ndjson"
     "{\"spec_hash\":\"0000000000000000\",\"forged\":true,\"row_hash\":\"0000000000000000\"}\n")
execute_process(COMMAND ${CLI} serve "${campaign}" --state "${state}" --quiet
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "re-serve over poisoned cache failed: ${rc}")
endif()
if(NOT out MATCHES "1 rejected")
  message(FATAL_ERROR "poisoned cache row was not rejected: ${out}")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        "${state}/results.ndjson" "${reference}"
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "results diverged after cache poisoning")
endif()

message(STATUS "serve_resume: kill/resume/poison all byte-identical")
