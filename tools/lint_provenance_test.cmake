# The lint_trace registry audit: a schema-v2 trace whose provenance names a
# backend the engine::Registry knows lints clean, while one naming an
# unknown substrate fails the audit (non-zero exit) even though the trace
# itself satisfies every execution invariant.
set(base "${WORKDIR}/prov_base.trace")
set(good "${WORKDIR}/prov_good.trace")
set(bad "${WORKDIR}/prov_bad.trace")

execute_process(COMMAND ${CLI} run phase-king 4 1 0 1 1 1 --save-trace ${base}
                RESULT_VARIABLE rc1)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "run --save-trace failed: ${rc1}")
endif()

execute_process(COMMAND ${STAMP} ${base} ${good} sim sync 7 256
                RESULT_VARIABLE rc2)
if(NOT rc2 EQUAL 0)
  message(FATAL_ERROR "stamp_trace (known backend) failed: ${rc2}")
endif()
execute_process(COMMAND ${LINTER} ${good} RESULT_VARIABLE rc3
                OUTPUT_VARIABLE lint_out)
if(NOT rc3 EQUAL 0)
  message(FATAL_ERROR "lint_trace rejected a registry-known backend: ${rc3}")
endif()
if(NOT lint_out MATCHES "provenance")
  message(FATAL_ERROR "lint_trace did not report v2 provenance:\n${lint_out}")
endif()

execute_process(COMMAND ${STAMP} ${base} ${bad} warp-drive
                RESULT_VARIABLE rc4)
if(NOT rc4 EQUAL 0)
  message(FATAL_ERROR "stamp_trace (unknown backend) failed: ${rc4}")
endif()
execute_process(COMMAND ${LINTER} ${bad} RESULT_VARIABLE rc5
                ERROR_VARIABLE lint_err)
if(rc5 EQUAL 0)
  message(FATAL_ERROR
          "lint_trace accepted a trace claiming an unknown backend")
endif()
if(NOT lint_err MATCHES "unknown execution backend")
  message(FATAL_ERROR "missing unknown-backend diagnostic:\n${lint_err}")
endif()
