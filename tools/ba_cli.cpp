// ba_cli — command-line front end for the library.
//
//   ba_cli bound <t>
//       print the Lemma 1 threshold t^2/32
//   ba_cli attack <protocol> [n] [t] [--save FILE]
//       run the Theorem 2 engine against a weak-consensus protocol;
//       optionally save the violation certificate to FILE
//   ba_cli verify <FILE> <protocol> [n] [t]
//       load a certificate and re-verify it by full state-machine replay
//   ba_cli solvability <property> <n> <t>
//       Theorem 4 verdict for a canned validity property
//   ba_cli run <protocol> <n> <t> <bit...> [--backend SPEC]
//              [--save-trace FILE]
//       run a protocol on explicit proposals and print decisions;
//       optionally save the execution trace for later auditing (lint_trace)
//   ba_cli sweep [--jobs N] [--grid n:t,n:t,...] [--json FILE]
//                [--backend SPEC]
//       run the Theorem 2 attack sweep (standard candidate set) over a grid,
//       fanned across N pool workers (0 = hardware concurrency, default 1);
//       optionally write the machine-readable BENCH_sweep.json report
//   ba_cli bounds [--protocol P] [--n N --t T] [--json]
//       print the statically derived communication bounds (closed forms in
//       n/t/f; concrete budgets when --n/--t given) and cross-check every
//       correctness-claiming protocol against the paper's t^2/32 threshold
//       — exits 1 when a CommSpec dips below a lower bound it is subject to
//   ba_cli sim <protocol> <n> <t> <bit...> [--model sync|jitter|gst]
//              [--seed S] [--gst R] [--lag K] [--round-ticks T]
//              [--backend SPEC] [--save-trace FILE]
//       run a protocol through the discrete-event simulator (src/sim/)
//       and print decisions plus per-link network metrics; saved traces
//       carry schema-v2 provenance (backend, model, seed)
//   ba_cli explore --protocol P --n N --t T [--proposals b,b,...]
//              [--faulty p,p,...] [--exhaustive] [--depth D] [--samples S]
//              [--seed S] [--start-index I] [--coin-seed C] [--strategy X]
//              [--strategy-seed S] [--jobs J] [--save FILE]
//              [--save-trace FILE]
//       bounded schedule exploration of an asynchronous protocol
//       (src/async/): exhaustive prefix enumeration or seeded sampling;
//       prints the campaign report, lints a representative async trace
//       against the protocol's static budget, and on a safety violation
//       emits a minimized replayable certificate (exit 1)
//   ba_cli explore --replay FILE [--save-trace FILE]
//       re-execute a failing-schedule certificate and confirm the recorded
//       violation reproduces (exit 0 when it does)
//
// Every execution dispatches through the engine::Registry: SPEC is
// `lockstep`, `sim[:model[,seed]]`, or `async[:strategy[,seed]]` (e.g.
// `sim:jitter,42`, `async:rr-starve,7`); `run` defaults to lockstep, `sim`
// to the sim backend refined by its model flags. The async backend refuses
// synchronous protocols — its surface is `explore` and the async API.
//
// protocols: see tool_protocols.h
// properties: weak | strong | sender | ic | any-proposed | constant

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/ba.h"
#include "tool_protocols.h"

namespace {

using namespace ba;
using tools::make_protocol;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  ba_cli bound <t>\n"
               "  ba_cli attack <protocol> [n] [t] [--save FILE]\n"
               "  ba_cli dr-attack <direct|relay-ring|dolev-strong> [n] [t]\n"
               "  ba_cli verify <FILE> <protocol> [n] [t]\n"
               "  ba_cli solvability <property> <n> <t>\n"
               "  ba_cli run <protocol> <n> <t> <bit...> [--backend SPEC] "
               "[--fault SPEC]\n"
               "         [--fault-seed S] [--save-trace FILE]\n"
               "  ba_cli sweep [--jobs N] [--grid n:t,...] [--json FILE] "
               "[--out FILE] [--backend SPEC]\n"
               "         [--fault-axis [KIND]] [--fault-seed S]\n"
               "  ba_cli serve <campaign.json> --state DIR [--workers N] "
               "[--respawns N]\n"
               "         [--serial FILE] [--bench FILE] [--die-after K] "
               "[--stale-ms M] [--quiet]\n"
               "  ba_cli serve-worker --state DIR --shard N [--die-after K]\n"
               "  ba_cli bounds [--protocol P] [--n N --t T] [--json]\n"
               "  ba_cli sim <protocol> <n> <t> <bit...> [--model "
               "sync|jitter|gst]\n"
               "         [--seed S] [--gst R] [--lag K] [--round-ticks T] "
               "[--backend SPEC]\n"
               "         [--fault SPEC] [--fault-seed S] [--save-trace FILE]\n"
               "  ba_cli explore --protocol P --n N --t T "
               "[--proposals b,b,...] [--faulty p,p,...]\n"
               "         [--fault SPEC]\n"
               "         [--exhaustive] [--depth D] [--samples S] [--seed S] "
               "[--start-index I]\n"
               "         [--coin-seed C] [--strategy X] [--strategy-seed S] "
               "[--jobs J]\n"
               "         [--save FILE] [--save-trace FILE]\n"
               "  ba_cli explore --replay FILE [--save-trace FILE]\n"
               "backend SPEC: lockstep | sim[:model[,seed]] | "
               "async[:strategy[,seed]]\n"
               "fault SPEC (docs/FAULTS.md): %s\n"
               "protocols: %s\n"
               "async protocols: %s\n"
               "async strategies: %s\n"
               "properties: weak strong sender ic any-proposed constant\n",
               faults::fault_plan_names(), tools::protocol_names(),
               async::async_protocol_list(), async::scheduler_strategy_list());
  return 2;
}

std::optional<validity::ValidityProperty> make_property(
    const std::string& name, std::uint32_t n, std::uint32_t t) {
  if (name == "weak") return validity::weak_validity(n, t);
  if (name == "strong") return validity::strong_validity(n, t);
  if (name == "sender") return validity::sender_validity(n, t, 0);
  if (name == "ic") return validity::ic_validity(n, t);
  if (name == "any-proposed") return validity::any_proposed_validity(n, t);
  if (name == "constant") return validity::constant_validity(n, t);
  return std::nullopt;
}

bool write_file(const std::string& path, const Bytes& bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

std::optional<Bytes> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  Bytes bytes((std::istreambuf_iterator<char>(in)),
              std::istreambuf_iterator<char>());
  return bytes;
}

int cmd_bound(int argc, char** argv) {
  if (argc < 1) return usage();
  const auto t = static_cast<std::uint32_t>(std::atoi(argv[0]));
  std::printf("t = %u  =>  t^2/32 = %llu messages\n", t,
              static_cast<unsigned long long>(lowerbound::lemma1_bound(t)));
  return 0;
}

int cmd_attack(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string name = argv[0];
  std::uint32_t n = 12, t = 8;
  std::string save;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--save") == 0 && i + 1 < argc) {
      save = argv[++i];
    } else if (n == 12) {
      n = static_cast<std::uint32_t>(std::atoi(argv[i]));
    } else {
      t = static_cast<std::uint32_t>(std::atoi(argv[i]));
    }
  }
  if (n != 12 && t == 8) t = n - 1;
  auto protocol = make_protocol(name, n);
  if (!protocol) return usage();

  auto report = lowerbound::attack_weak_consensus(SystemParams{n, t},
                                                  *protocol);
  std::printf("%s", report.narrative.c_str());
  std::printf("max message complexity observed: %llu (bound t^2/32 = %llu)\n",
              static_cast<unsigned long long>(report.max_message_complexity),
              static_cast<unsigned long long>(report.bound));
  if (!report.violation_found) {
    std::printf("no violation constructed: protocol survives the attack\n");
    return 0;
  }
  auto check = lowerbound::verify_certificate(*report.certificate, *protocol);
  std::printf("violation: %s (replay verification: %s)\n",
              to_string(report.certificate->kind).c_str(),
              check.ok ? "OK" : check.error.c_str());
  if (!save.empty()) {
    if (write_file(save, lowerbound::encode_certificate(
                             *report.certificate))) {
      std::printf("certificate saved to %s\n", save.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", save.c_str());
      return 1;
    }
  }
  return 0;
}

int cmd_verify(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string file = argv[0];
  const std::string name = argv[1];
  auto bytes = read_file(file);
  if (!bytes) {
    std::fprintf(stderr, "cannot read %s\n", file.c_str());
    return 1;
  }
  auto cert = lowerbound::decode_certificate(*bytes);
  if (!cert) {
    std::fprintf(stderr, "not a valid certificate file\n");
    return 1;
  }
  const std::uint32_t n = argc > 2
                              ? static_cast<std::uint32_t>(std::atoi(argv[2]))
                              : cert->execution.params.n;
  auto protocol = make_protocol(name, n);
  if (!protocol) return usage();
  auto check = lowerbound::verify_certificate(*cert, *protocol);
  std::printf("certificate: %s violation on n=%u t=%u execution (%u rounds)\n",
              to_string(cert->kind).c_str(), cert->execution.params.n,
              cert->execution.params.t, cert->execution.rounds);
  std::printf("narrative: %s\n", cert->narrative.c_str());
  std::printf("verification: %s\n", check.ok ? "OK" : check.error.c_str());
  return check.ok ? 0 : 1;
}

int cmd_dr_attack(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string name = argv[0];
  const auto n = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1]))
                          : 12u;
  const auto t = argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2]))
                          : n / 2;
  ProtocolFactory protocol;
  if (name == "direct") {
    protocol = protocols::bb_candidate_direct(0);
  } else if (name == "relay-ring") {
    protocol = protocols::bb_candidate_relay_ring(0, 2);
  } else if (name == "dolev-strong") {
    auto auth = std::make_shared<crypto::Authenticator>(0xd12, n);
    protocol = protocols::dolev_strong_broadcast(auth, 0);
  } else {
    std::fprintf(stderr,
                 "dr-attack protocols: direct relay-ring dolev-strong\n");
    return 2;
  }
  auto report = lowerbound::attack_broadcast(
      SystemParams{n, t}, protocol, 0, Value::bit(0), Value::bit(1));
  std::printf("%s", report.narrative.c_str());
  if (report.violation_found) {
    auto check = lowerbound::verify_certificate(*report.certificate,
                                                protocol);
    std::printf("violation: %s (replay verification: %s)\n",
                to_string(report.certificate->kind).c_str(),
                check.ok ? "OK" : check.error.c_str());
  } else {
    std::printf("protocol survives the cut attack (min in-neighbourhood "
                "%zu > t = %u, or victim stayed consistent)\n",
                report.min_in_neighbourhood, t);
  }
  return 0;
}

int cmd_solvability(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string name = argv[0];
  const auto n = static_cast<std::uint32_t>(std::atoi(argv[1]));
  const auto t = static_cast<std::uint32_t>(std::atoi(argv[2]));
  auto prop = make_property(name, n, t);
  if (!prop || n == 0 || t >= n) return usage();
  auto verdict = validity::solvability(*prop, n, t);
  std::printf("%s at n=%u, t=%u: %s\n", prop->name.c_str(), n, t,
              verdict.summary().c_str());
  if (verdict.cc_witness) {
    std::printf("CC fails at configuration %s\n",
                verdict.cc_witness->to_value().to_string().c_str());
  }
  return 0;
}

/// Parses a --backend spec, reporting errors (malformed syntax, unknown
/// names, bad sim config) on stderr. The spec is returned alongside the
/// handle so callers can stamp trace provenance with it.
std::optional<std::pair<engine::BackendSpec, engine::BackendHandle>>
resolve_backend(const std::string& spec_string) {
  auto spec = engine::parse_backend_spec(spec_string);
  if (!spec) {
    std::fprintf(stderr, "--backend: malformed spec '%s' "
                         "(want name[:model[,seed]])\n",
                 spec_string.c_str());
    return std::nullopt;
  }
  try {
    return std::make_pair(*spec, engine::Registry::global().make(*spec));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "--backend: %s\n", e.what());
    return std::nullopt;
  }
}

/// The schema-v2 trace provenance vector for a backend:
/// [name, model, seed, round_ticks].
Value backend_provenance(const engine::BackendSpec& spec) {
  return Value::vec({Value{spec.name}, Value{spec.sim.model},
                     Value{static_cast<std::int64_t>(spec.sim.seed)},
                     Value{static_cast<std::int64_t>(spec.sim.round_ticks)}});
}

int cmd_run(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string name = argv[0];
  const auto n = static_cast<std::uint32_t>(std::atoi(argv[1]));
  const auto t = static_cast<std::uint32_t>(std::atoi(argv[2]));
  std::string save_trace;
  std::string backend_spec = "lockstep";
  std::string fault_plan = "fault-free";
  std::uint64_t fault_seed = 1;
  std::vector<Value> proposals;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--save-trace") == 0 && i + 1 < argc) {
      save_trace = argv[++i];
    } else if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
      backend_spec = argv[++i];
    } else if (std::strcmp(argv[i], "--fault") == 0 && i + 1 < argc) {
      fault_plan = argv[++i];
    } else if (std::strcmp(argv[i], "--fault-seed") == 0 && i + 1 < argc) {
      fault_seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else {
      proposals.push_back(Value::bit(std::atoi(argv[i])));
    }
  }
  if (proposals.size() != n) {
    std::fprintf(stderr, "need exactly n proposal bits\n");
    return 2;
  }
  auto protocol = make_protocol(name, n);
  if (!protocol) return usage();
  auto backend = resolve_backend(backend_spec);
  if (!backend) return 2;
  const SystemParams params{n, t};
  faults::FaultSpec fault_spec;
  Adversary adversary = Adversary::none();
  try {
    fault_spec = faults::checked_fault_spec(fault_plan, params);
    adversary = faults::compile_adversary(fault_spec, params, fault_seed);
  } catch (const std::exception& e) {
    // The pinned fault-grammar errors, verbatim: every surface (run, sim,
    // sweep, serve) reports the same string for the same bad plan.
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  RunOptions opts;
  opts.lint_trace = true;
  // Gate the run with the statically derived message budget when the
  // protocol declares a CommSpec (the linter flags budget violations),
  // evaluated at the fault plan's declared actual-fault count.
  if (const statics::CommSpec* spec = protocols::find_comm_spec(name)) {
    opts.message_budget =
        statics::budget_at(statics::analyze(*spec), params,
                           fault_spec.declared_faults(params))
            .messages;
  }
  RunResult res;
  try {
    res = backend->second->run(params, *protocol, proposals, adversary, opts);
  } catch (const std::exception& e) {
    // E.g. the async backend refuses synchronous protocols by contract.
    std::fprintf(stderr, "run: %s\n", e.what());
    return 2;
  }
  for (ProcessId p = 0; p < n; ++p) {
    std::printf("p%u: proposes %s decides %s (round %u)\n", p,
                proposals[p].to_string().c_str(),
                res.decisions[p] ? res.decisions[p]->to_string().c_str()
                                 : "<none>",
                res.trace.procs[p].decision_round);
  }
  std::printf("messages (correct senders): %llu, payload bytes: %llu\n",
              static_cast<unsigned long long>(res.messages_sent_by_correct),
              static_cast<unsigned long long>(
                  res.trace.payload_bytes_sent_by_correct()));
  if (res.lint) std::printf("trace lint: %s\n", res.lint->summary().c_str());
  if (!save_trace.empty()) {
    // Lockstep traces keep the schema-v1 format (no provenance) for
    // compatibility with pre-engine consumers; other backends stamp v2
    // provenance so audits can tell execution substrates apart.
    const Bytes encoded =
        backend->first.name == "lockstep"
            ? encode_trace(res.trace)
            : encode_trace_with_provenance(res.trace,
                                           backend_provenance(backend->first));
    if (write_file(save_trace, encoded)) {
      std::printf("trace saved to %s\n", save_trace.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", save_trace.c_str());
      return 1;
    }
  }
  return res.lint_clean() ? 0 : 1;
}

int cmd_sim(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string name = argv[0];
  const auto n = static_cast<std::uint32_t>(std::atoi(argv[1]));
  const auto t = static_cast<std::uint32_t>(std::atoi(argv[2]));

  std::string backend_spec = "sim";
  std::string save_trace;
  std::string fault_plan = "fault-free";
  std::uint64_t fault_seed = 1;
  std::optional<std::string> model;
  std::optional<std::uint64_t> seed;
  std::optional<std::uint32_t> gst;
  std::optional<std::uint32_t> lag;
  std::optional<std::uint64_t> round_ticks;
  std::vector<Value> proposals;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--model") == 0 && i + 1 < argc) {
      model = argv[++i];
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--gst") == 0 && i + 1 < argc) {
      gst = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--lag") == 0 && i + 1 < argc) {
      lag = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--round-ticks") == 0 && i + 1 < argc) {
      round_ticks = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
      backend_spec = argv[++i];
    } else if (std::strcmp(argv[i], "--fault") == 0 && i + 1 < argc) {
      fault_plan = argv[++i];
    } else if (std::strcmp(argv[i], "--fault-seed") == 0 && i + 1 < argc) {
      fault_seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--save-trace") == 0 && i + 1 < argc) {
      save_trace = argv[++i];
    } else {
      proposals.push_back(Value::bit(std::atoi(argv[i])));
    }
  }
  if (proposals.size() != n) {
    std::fprintf(stderr, "need exactly n proposal bits\n");
    return 2;
  }
  auto protocol = make_protocol(name, n);
  if (!protocol) return usage();

  // Individual model flags refine whatever --backend selected (the default
  // is the sim backend with its stock config).
  auto parsed = engine::parse_backend_spec(backend_spec);
  if (!parsed) {
    std::fprintf(stderr, "--backend: malformed spec '%s' "
                         "(want name[:model[,seed]])\n",
                 backend_spec.c_str());
    return 2;
  }
  engine::BackendSpec spec = *parsed;
  if (model) spec.sim.model = *model;
  if (seed) spec.sim.seed = *seed;
  if (gst) spec.sim.gst_round = *gst;
  if (lag) spec.sim.lag = *lag;
  if (round_ticks) spec.sim.round_ticks = *round_ticks;

  engine::BackendHandle backend;
  try {
    backend = engine::Registry::global().make(spec);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sim: %s\n", e.what());
    return 2;
  }

  const SystemParams params{n, t};
  faults::FaultSpec fault_spec;
  Adversary adversary = Adversary::none();
  try {
    fault_spec = faults::checked_fault_spec(fault_plan, params);
    adversary = faults::compile_adversary(fault_spec, params, fault_seed);
  } catch (const std::exception& e) {
    // Pinned fault-grammar errors, verbatim (same string on every surface).
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  RunOptions opts;
  opts.lint_trace = true;
  if (const statics::CommSpec* spec = protocols::find_comm_spec(name)) {
    opts.message_budget =
        statics::budget_at(statics::analyze(*spec), params,
                           fault_spec.declared_faults(params))
            .messages;
  }
  RunResult res;
  try {
    res = backend->run(params, *protocol, proposals, adversary, opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sim: %s\n", e.what());
    return 1;
  }
  for (ProcessId p = 0; p < n; ++p) {
    std::printf("p%u: proposes %s decides %s (round %u)\n", p,
                proposals[p].to_string().c_str(),
                res.decisions[p] ? res.decisions[p]->to_string().c_str()
                                 : "<none>",
                res.trace.procs[p].decision_round);
  }
  std::printf("backend %s (model %s): %u rounds, %llu messages from correct "
              "senders\n",
              backend->name(), spec.sim.model.c_str(), res.rounds_executed,
              static_cast<unsigned long long>(res.messages_sent_by_correct));
  if (res.net) std::printf("%s\n", res.net->summary().c_str());
  if (res.lint) {
    std::printf("trace lint: %s\n", res.lint->summary().c_str());
  }
  if (!save_trace.empty()) {
    if (write_file(save_trace,
                   encode_trace_with_provenance(
                       res.trace, backend_provenance(spec)))) {
      std::printf("trace saved to %s (schema v2)\n", save_trace.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", save_trace.c_str());
      return 1;
    }
  }
  return res.lint_clean() ? 0 : 1;
}

int cmd_bounds(int argc, char** argv) {
  std::string protocol;
  std::optional<std::uint32_t> n, t;
  bool json = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--protocol") == 0 && i + 1 < argc) {
      protocol = argv[++i];
    } else if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      n = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--t") == 0 && i + 1 < argc) {
      t = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      return usage();
    }
  }
  std::optional<SystemParams> at;
  if (n || t) {
    if (!n || !t || !SystemParams{*n, *t}.valid()) {
      std::fprintf(stderr, "bounds: --n and --t must be given together "
                           "with t < n\n");
      return 2;
    }
    at = SystemParams{*n, *t};
  }

  std::vector<statics::StaticBounds> bounds;
  if (protocol.empty()) {
    for (const statics::CommSpec& spec : protocols::all_comm_specs()) {
      bounds.push_back(statics::analyze(spec));
    }
  } else {
    const statics::CommSpec* spec = protocols::find_comm_spec(protocol);
    if (!spec) {
      std::fprintf(stderr, "bounds: unknown protocol '%s'\n",
                   protocol.c_str());
      return 2;
    }
    bounds.push_back(statics::analyze(*spec));
  }

  if (json) {
    statics::write_bounds_json(std::cout, bounds, at);
  } else {
    statics::write_bounds_markdown(std::cout, bounds, at);
  }

  // The lower-bound gate: a correctness-claiming spec below t^2/32 is a
  // spec bug (the paper says no correct protocol can be there).
  const auto grid = at ? std::vector<SystemParams>{*at}
                       : statics::standard_cross_check_grid();
  const auto findings = statics::cross_check(bounds, grid);
  if (!json) {
    if (findings.empty()) {
      std::printf("\nlower-bound cross-check: all specs clear t^2/32\n");
    } else {
      for (const auto& finding : findings) {
        std::fprintf(stderr, "cross-check FAIL: %s\n",
                     finding.to_string().c_str());
      }
    }
  }
  return findings.empty() ? 0 : 1;
}

std::optional<std::vector<SystemParams>> parse_grid(const std::string& spec) {
  std::vector<SystemParams> grid;
  std::stringstream ss(spec);
  std::string point;
  while (std::getline(ss, point, ',')) {
    const auto colon = point.find(':');
    if (colon == std::string::npos) return std::nullopt;
    const auto n =
        static_cast<std::uint32_t>(std::atoi(point.substr(0, colon).c_str()));
    const auto t =
        static_cast<std::uint32_t>(std::atoi(point.substr(colon + 1).c_str()));
    if (!SystemParams{n, t}.valid()) return std::nullopt;
    grid.push_back({n, t});
  }
  if (grid.empty()) return std::nullopt;
  return grid;
}

int cmd_sweep(int argc, char** argv) {
  lowerbound::SweepOptions options;
  std::vector<SystemParams> grid = lowerbound::standard_sweep_grid();
  std::string json_path;
  std::string out_path;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      options.jobs = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--grid") == 0 && i + 1 < argc) {
      auto parsed = parse_grid(argv[++i]);
      if (!parsed) {
        std::fprintf(stderr, "bad --grid (want n:t[,n:t...] with t < n)\n");
        return 2;
      }
      grid = std::move(*parsed);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
      auto backend = resolve_backend(argv[++i]);
      if (!backend) return 2;
      options.attack.backend = backend->second;
    } else if (std::strcmp(argv[i], "--fault-axis") == 0) {
      // Optional value: a bare kind name ("isolate") or a full template
      // spec ("crash:0@3%head", count ignored); defaults to isolate.
      std::string axis = "isolate";
      if (i + 1 < argc && argv[i + 1][0] != '-') axis = argv[++i];
      faults::FaultSpec axis_spec;
      if (const auto kind = faults::find_fault_kind(axis)) {
        axis_spec.kind = *kind;
      } else {
        try {
          axis_spec = faults::parse_fault_spec(axis);
        } catch (const std::exception& e) {
          std::fprintf(stderr, "%s\n", e.what());
          return 2;
        }
      }
      options.fault_axis = axis_spec;
    } else if (std::strcmp(argv[i], "--fault-seed") == 0 && i + 1 < argc) {
      options.fault_seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else {
      return usage();
    }
  }

  // Streaming NDJSON output: rows are emitted the moment their point
  // completes, reordered to index order, so the file is byte-identical
  // across --jobs values (the service's OrderedNdjsonWriter reorder
  // buffer; on_row calls are serialized by the sweep).
  std::unique_ptr<service::NdjsonFileWriter> out_file;
  std::unique_ptr<service::OrderedNdjsonWriter> out_ordered;
  if (!out_path.empty()) {
    out_file = std::make_unique<service::NdjsonFileWriter>(out_path);
    out_ordered = std::make_unique<service::OrderedNdjsonWriter>(
        [&](std::string_view line) { out_file->write_line(line); });
    options.on_row = [&](std::size_t index, const lowerbound::SweepRow& row) {
      out_ordered->put(index, lowerbound::encode_sweep_row_ndjson(row));
    };
  }

  lowerbound::SweepResult result;
  try {
    result = lowerbound::run_attack_sweep(lowerbound::standard_sweep_entries(),
                                          grid, options);
  } catch (const std::exception& e) {
    // E.g. a non-sweepable --fault-axis kind.
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  if (out_ordered && !out_ordered->drained()) {
    std::fprintf(stderr, "internal error: %s not fully drained\n",
                 out_path.c_str());
    return 1;
  }
  if (out_file) {
    std::printf("streamed %llu NDJSON rows to %s\n",
                static_cast<unsigned long long>(out_file->lines_written()),
                out_path.c_str());
  }
  lowerbound::write_markdown(std::cout, result);
  std::printf("\n%zu points, jobs=%u, %.3fs wall (%.1f points/sec)\n",
              result.rows.size(), result.jobs_used,
              static_cast<double>(result.wall_micros) / 1e6,
              result.wall_micros == 0
                  ? 0.0
                  : static_cast<double>(result.rows.size()) * 1e6 /
                        static_cast<double>(result.wall_micros));
  std::printf("Theorem 2 consistency: %s\n",
              result.theorem2_consistent() ? "HOLDS" : "VIOLATED");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    lowerbound::write_bench_json(out, result);
    std::printf("report written to %s\n", json_path.c_str());
  }
  return result.theorem2_consistent() ? 0 : 1;
}

int cmd_serve(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string campaign_file = argv[0];
  service::ServeOptions options;
  std::string serial_out;
  std::string bench_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--state") == 0 && i + 1 < argc) {
      options.state_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      options.workers = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--respawns") == 0 && i + 1 < argc) {
      options.respawn_budget =
          static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--die-after") == 0 && i + 1 < argc) {
      options.die_after = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--stale-ms") == 0 && i + 1 < argc) {
      options.heartbeat_stale_ms =
          static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--serial") == 0 && i + 1 < argc) {
      serial_out = argv[++i];
    } else if (std::strcmp(argv[i], "--bench") == 0 && i + 1 < argc) {
      bench_out = argv[++i];
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      options.quiet = true;
    } else {
      return usage();
    }
  }
  std::ifstream in(campaign_file);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", campaign_file.c_str());
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  try {
    const service::CampaignSpec spec =
        service::CampaignSpec::from_json(buf.str());
    service::ServeSummary summary;
    if (!serial_out.empty()) {
      // Single-shot reference run: no state dir, no workers, no cache.
      summary = service::run_campaign_serial(spec, serial_out);
    } else {
      if (options.state_dir.empty()) {
        std::fprintf(stderr, "serve: --state DIR is required\n");
        return 2;
      }
      summary = service::serve_campaign(spec, options);
    }
    std::printf(
        "campaign '%s': %llu tasks (%llu cached, %llu run, %llu rejected), "
        "%u workers, %u respawns, %.3fs -> %s\n",
        spec.name.c_str(),
        static_cast<unsigned long long>(summary.tasks_total),
        static_cast<unsigned long long>(summary.tasks_cached),
        static_cast<unsigned long long>(summary.tasks_run),
        static_cast<unsigned long long>(summary.rows_rejected),
        summary.workers_used, summary.respawns,
        static_cast<double>(summary.wall_micros) / 1e6,
        summary.results_file.c_str());
    if (!bench_out.empty()) {
      std::ofstream bench(bench_out);
      bench << service::bench_service_json(spec, summary);
      if (!bench) {
        std::fprintf(stderr, "failed to write %s\n", bench_out.c_str());
        return 1;
      }
      std::printf("bench report written to %s\n", bench_out.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
}

int cmd_serve_worker(int argc, char** argv) {
  service::WorkerOptions options;
  bool have_state = false, have_shard = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--state") == 0 && i + 1 < argc) {
      options.state_dir = argv[++i];
      have_state = true;
    } else if (std::strcmp(argv[i], "--shard") == 0 && i + 1 < argc) {
      options.shard = static_cast<std::uint32_t>(std::atoi(argv[++i]));
      have_shard = true;
    } else if (std::strcmp(argv[i], "--die-after") == 0 && i + 1 < argc) {
      options.die_after = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else {
      return usage();
    }
  }
  if (!have_state || !have_shard) return usage();
  return service::run_shard_worker(options);
}

std::optional<std::vector<int>> parse_bit_list(const std::string& spec) {
  std::vector<int> bits;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item != "0" && item != "1") return std::nullopt;
    bits.push_back(item == "1" ? 1 : 0);
  }
  if (bits.empty()) return std::nullopt;
  return bits;
}

std::optional<ProcessSet> parse_id_list(const std::string& spec) {
  ProcessSet ids;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty() ||
        item.find_first_not_of("0123456789") != std::string::npos) {
      return std::nullopt;
    }
    ids.insert(static_cast<ProcessId>(std::atoi(item.c_str())));
  }
  if (ids.empty()) return std::nullopt;
  return ids;
}

/// Schema-v2 provenance for async traces: [name, strategy, seed, 0] (the
/// fourth slot mirrors the sim backend's round_ticks and is meaningless for
/// delivery-at-a-time execution).
Value async_provenance(const std::string& strategy, std::uint64_t seed) {
  return Value::vec({Value{std::string{"async"}}, Value{strategy},
                     Value{static_cast<std::int64_t>(seed)},
                     Value{static_cast<std::int64_t>(0)}});
}

void print_async_decisions(const SystemParams& params,
                           const std::vector<int>& proposals,
                           const ProcessSet& faulty,
                           const async::AsyncRunResult& res) {
  for (ProcessId p = 0; p < params.n; ++p) {
    if (faulty.contains(p)) {
      std::printf("p%u: crashed\n", p);
      continue;
    }
    std::printf("p%u: proposes %d decides %s\n", p, proposals[p],
                res.run.decisions[p]
                    ? res.run.decisions[p]->to_string().c_str()
                    : "<none>");
  }
}

bool save_async_trace(const std::string& path,
                      const async::AsyncRunResult& res,
                      const std::string& strategy, std::uint64_t seed) {
  const Bytes encoded = encode_trace_with_provenance(
      res.run.trace, async_provenance(strategy, seed));
  if (write_file(path, encoded)) {
    std::printf("trace saved to %s (schema v2)\n", path.c_str());
    return true;
  }
  std::fprintf(stderr, "failed to write %s\n", path.c_str());
  return false;
}

int cmd_explore_replay(const std::string& path,
                       const std::string& save_trace) {
  auto bytes = read_file(path);
  if (!bytes) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 2;
  }
  async::ScheduleCertificate cert;
  try {
    cert = async::ScheduleCertificate::decode(
        std::string(bytes->begin(), bytes->end()));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "explore: %s\n", e.what());
    return 2;
  }
  async::AsyncRunOptions opts;
  opts.max_deliveries = cert.max_deliveries;
  opts.record_trace = true;
  async::AsyncRunResult res;
  try {
    res = async::replay_certificate(cert, opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "explore: %s\n", e.what());
    return 2;
  }
  std::printf("certificate: %s violation of %s at n=%u t=%u "
              "(%zu scripted choices, %s completion)\n",
              cert.property.c_str(), cert.protocol.c_str(), cert.params.n,
              cert.params.t, cert.choices.size(),
              cert.completion_strategy.c_str());
  print_async_decisions(cert.params, cert.proposals, cert.faulty, res);
  auto violation = async::binary_consensus_safety(
      cert.params, cert.proposals, cert.faulty, res.run.decisions);
  const bool reproduced = violation && violation->property == cert.property;
  if (reproduced) {
    std::printf("replay: violation reproduced (%s: %s)\n",
                violation->property.c_str(), violation->detail.c_str());
  } else if (violation) {
    std::printf("replay: DIFFERENT violation (%s, certificate claims %s)\n",
                violation->property.c_str(), cert.property.c_str());
  } else {
    std::printf("replay: no violation -- certificate does not reproduce\n");
  }
  if (!save_trace.empty() &&
      !save_async_trace(save_trace, res, cert.completion_strategy,
                        cert.completion_seed)) {
    return 1;
  }
  return reproduced ? 0 : 1;
}

int cmd_explore(int argc, char** argv) {
  async::ExploreTask task;
  async::ExploreOptions options;
  std::string save_cert, save_trace, replay_path, fault_plan;
  std::optional<std::uint32_t> n, t;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--protocol") == 0 && i + 1 < argc) {
      task.protocol = argv[++i];
    } else if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      n = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--t") == 0 && i + 1 < argc) {
      t = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--proposals") == 0 && i + 1 < argc) {
      auto bits = parse_bit_list(argv[++i]);
      if (!bits) {
        std::fprintf(stderr, "explore: bad --proposals (want b,b,... with "
                             "b in {0,1})\n");
        return 2;
      }
      task.proposals = std::move(*bits);
    } else if (std::strcmp(argv[i], "--faulty") == 0 && i + 1 < argc) {
      auto ids = parse_id_list(argv[++i]);
      if (!ids) {
        std::fprintf(stderr, "explore: bad --faulty (want p,p,...)\n");
        return 2;
      }
      task.faulty = std::move(*ids);
    } else if (std::strcmp(argv[i], "--fault") == 0 && i + 1 < argc) {
      fault_plan = argv[++i];
    } else if (std::strcmp(argv[i], "--exhaustive") == 0) {
      options.exhaustive = true;
    } else if (std::strcmp(argv[i], "--depth") == 0 && i + 1 < argc) {
      options.depth = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--samples") == 0 && i + 1 < argc) {
      options.samples = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      options.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--start-index") == 0 && i + 1 < argc) {
      options.start_index = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--coin-seed") == 0 && i + 1 < argc) {
      task.coin_seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--strategy") == 0 && i + 1 < argc) {
      task.completion_strategy = argv[++i];
    } else if (std::strcmp(argv[i], "--strategy-seed") == 0 && i + 1 < argc) {
      task.completion_seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--max-deliveries") == 0 && i + 1 < argc) {
      task.max_deliveries = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      options.jobs = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--save") == 0 && i + 1 < argc) {
      save_cert = argv[++i];
    } else if (std::strcmp(argv[i], "--save-trace") == 0 && i + 1 < argc) {
      save_trace = argv[++i];
    } else if (std::strcmp(argv[i], "--replay") == 0 && i + 1 < argc) {
      replay_path = argv[++i];
    } else {
      return usage();
    }
  }
  if (!replay_path.empty()) return cmd_explore_replay(replay_path, save_trace);
  if (!n || !t) {
    std::fprintf(stderr, "explore: --n and --t are required\n");
    return 2;
  }
  task.params = SystemParams{*n, *t};
  if (!fault_plan.empty()) {
    // The async lowering of a fault plan: crash/mute become crash-from-start
    // (the set --faulty takes verbatim). Byzantine lowerings need replica
    // substitution, which the explorer's crash-only surface cannot host.
    async::AsyncAdversary adversary;
    try {
      adversary = faults::compile_async(
          faults::checked_fault_spec(fault_plan, task.params), task.params,
          options.seed);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
    if (!adversary.byzantine.empty()) {
      std::fprintf(stderr,
                   "explore: fault plan '%s': explore drives crash-from-start "
                   "faults only\n",
                   fault_plan.c_str());
      return 2;
    }
    task.faulty = adversary.faulty;
  }
  if (task.proposals.empty()) {
    // Default instance: alternating proposals, the adversarially interesting
    // split (unanimous inputs decide regardless of schedule by validity).
    for (std::uint32_t p = 0; p < *n; ++p) {
      task.proposals.push_back(static_cast<int>(p % 2));
    }
  }

  async::ExploreReport report;
  try {
    report = async::explore(task, options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "explore: %s\n", e.what());
    return 2;
  }
  std::printf("%s n=%u t=%u coin-seed %llu: explored %llu schedules (%s)\n",
              task.protocol.c_str(), *n, *t,
              static_cast<unsigned long long>(task.coin_seed),
              static_cast<unsigned long long>(report.schedules),
              options.exhaustive ? "exhaustive" : "sampling");
  std::printf("deliveries %llu, quiesced %llu, all-decided %llu, "
              "violations %llu\n",
              static_cast<unsigned long long>(report.deliveries),
              static_cast<unsigned long long>(report.quiesced),
              static_cast<unsigned long long>(report.all_decided),
              static_cast<unsigned long long>(report.violations));
  std::printf("digest %016llx\n",
              static_cast<unsigned long long>(report.digest));
  if (!options.exhaustive) {
    std::printf("next start-index: %llu\n",
                static_cast<unsigned long long>(report.next_index));
  }

  // One representative run (empty scripted prefix, completion strategy
  // throughout) carries the trace surface: lint it against the protocol's
  // statically derived message budget and optionally save it for lint_trace.
  async::ScheduleCertificate probe;
  probe.protocol = task.protocol;
  probe.params = task.params;
  probe.proposals = task.proposals;
  probe.faulty = task.faulty;
  probe.coin_seed = task.coin_seed;
  probe.completion_strategy = task.completion_strategy;
  probe.completion_seed = task.completion_seed;
  probe.max_deliveries = task.max_deliveries;
  async::AsyncRunOptions ropts;
  ropts.max_deliveries = task.max_deliveries;
  ropts.record_trace = true;
  ropts.lint_trace = true;
  if (const statics::CommSpec* spec =
          protocols::find_comm_spec(task.protocol)) {
    ropts.message_budget =
        statics::budget_at(statics::analyze(*spec), task.params).messages;
  }
  async::AsyncRunResult rep;
  try {
    rep = async::replay_certificate(probe, ropts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "explore: %s\n", e.what());
    return 2;
  }
  std::printf("representative run (%s completion): %llu deliveries, "
              "quiesced=%s\n",
              task.completion_strategy.c_str(),
              static_cast<unsigned long long>(rep.deliveries),
              rep.run.quiesced ? "yes" : "no");
  if (rep.run.lint) {
    std::printf("trace lint: %s\n", rep.run.lint->summary().c_str());
  }
  if (!save_trace.empty() &&
      !save_async_trace(save_trace, rep, task.completion_strategy,
                        task.completion_seed)) {
    return 1;
  }

  if (report.certificate) {
    const async::ScheduleCertificate& cert = *report.certificate;
    std::printf("violation (%s): %s\n", cert.property.c_str(),
                cert.detail.c_str());
    std::printf("minimized certificate: %zu scripted choices\n",
                cert.choices.size());
    if (!save_cert.empty()) {
      const std::string text = cert.encode();
      if (write_file(save_cert, Bytes(text.begin(), text.end()))) {
        std::printf("certificate saved to %s\n", save_cert.c_str());
      } else {
        std::fprintf(stderr, "failed to write %s\n", save_cert.c_str());
      }
    }
    return 1;
  }
  std::printf("no safety violations across explored schedules\n");
  return rep.run.lint_clean() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "bound") return cmd_bound(argc - 2, argv + 2);
  if (cmd == "attack") return cmd_attack(argc - 2, argv + 2);
  if (cmd == "dr-attack") return cmd_dr_attack(argc - 2, argv + 2);
  if (cmd == "verify") return cmd_verify(argc - 2, argv + 2);
  if (cmd == "solvability") return cmd_solvability(argc - 2, argv + 2);
  if (cmd == "run") return cmd_run(argc - 2, argv + 2);
  if (cmd == "sweep") return cmd_sweep(argc - 2, argv + 2);
  if (cmd == "serve") return cmd_serve(argc - 2, argv + 2);
  if (cmd == "serve-worker") return cmd_serve_worker(argc - 2, argv + 2);
  if (cmd == "bounds") return cmd_bounds(argc - 2, argv + 2);
  if (cmd == "sim") return cmd_sim(argc - 2, argv + 2);
  if (cmd == "explore") return cmd_explore(argc - 2, argv + 2);
  return usage();
}
