# `ba_cli sweep --out FILE` streams one NDJSON row per grid point through
# the ordered writer. The file must be byte-identical across worker counts.
#
# Invoked from tools/CMakeLists.txt as:
#   cmake -DCLI=<ba_cli> -DWORKDIR=<dir> -P sweep_stream_out_test.cmake

set(dir "${WORKDIR}/sweep_stream")
file(REMOVE_RECURSE "${dir}")
file(MAKE_DIRECTORY "${dir}")

foreach(jobs 1 4)
  execute_process(COMMAND ${CLI} sweep --jobs ${jobs} --grid 8:7,12:11
                          --out "${dir}/rows_j${jobs}.ndjson"
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "sweep --out failed at jobs=${jobs}: ${rc}")
  endif()
endforeach()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        "${dir}/rows_j1.ndjson" "${dir}/rows_j4.ndjson"
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "streamed sweep NDJSON differs between jobs=1 and jobs=4")
endif()

file(STRINGS "${dir}/rows_j1.ndjson" lines)
list(LENGTH lines count)
if(count EQUAL 0)
  message(FATAL_ERROR "sweep --out produced no rows")
endif()

message(STATUS "sweep_stream: ${count} rows byte-identical across job counts")
