# The failing-schedule certificate pipeline, end to end: explore the broken
# Ben-Or variant (must find a violation, exit 1, and save a certificate),
# replay the certificate (must reproduce the recorded violation, exit 0, and
# save the replayed trace), audit the trace with the async-aware linter, and
# reject a corrupted certificate with a decode error.
set(cert "${WORKDIR}/ben_or_broken.cert")
set(trace "${WORKDIR}/ben_or_broken_replay.trace")

execute_process(COMMAND ${CLI} explore --protocol ben-or-broken --n 4 --t 1
                        --exhaustive --depth 2 --save ${cert}
                RESULT_VARIABLE rc1)
if(NOT rc1 EQUAL 1)
  message(FATAL_ERROR "explore on ben-or-broken: want exit 1 (violation), "
                      "got ${rc1}")
endif()
if(NOT EXISTS ${cert})
  message(FATAL_ERROR "explore --save did not write the certificate")
endif()

execute_process(COMMAND ${CLI} explore --replay ${cert} --save-trace ${trace}
                OUTPUT_VARIABLE replay_out
                RESULT_VARIABLE rc2)
if(NOT rc2 EQUAL 0)
  message(FATAL_ERROR "certificate replay failed: ${rc2}")
endif()
if(NOT replay_out MATCHES "violation reproduced")
  message(FATAL_ERROR "replay did not reproduce the violation:\n${replay_out}")
endif()

# The replayed trace carries async provenance; the linter must pick the
# async model and find the message accounting intact (safety violations are
# decision-level, not trace-level).
execute_process(COMMAND ${LINTER} ${trace} RESULT_VARIABLE rc3)
if(NOT rc3 EQUAL 0)
  message(FATAL_ERROR "lint_trace on the replayed async trace failed: ${rc3}")
endif()

set(corrupt "${WORKDIR}/ben_or_broken.cert.corrupt")
file(READ ${cert} cert_text)
string(REPLACE "ba-async-cert v1" "ba-async-cert v9" cert_text "${cert_text}")
file(WRITE ${corrupt} "${cert_text}")
execute_process(COMMAND ${CLI} explore --replay ${corrupt}
                RESULT_VARIABLE rc4)
if(NOT rc4 EQUAL 2)
  message(FATAL_ERROR "replay of a corrupted certificate: want 2, got ${rc4}")
endif()
