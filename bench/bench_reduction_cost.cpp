// E6 — Algorithm 1 / Lemma 18: the weak-consensus reduction adds ZERO
// messages on top of the underlying solver, for every solver.
//
// Expected shape: extra_messages = 0 in every row; the reduced weak
// consensus inherits exactly the solver's cost.

#include "bench_util.h"

namespace ba::bench {
namespace {

void measure(benchmark::State& state,
             const validity::ValidityProperty& problem,
             const SystemParams& params, const ProtocolFactory& solver) {
  auto rp = reductions::derive_reduction_params(problem, params, solver);
  if (!rp) {
    state.SkipWithError("reduction parameters underivable");
    return;
  }
  auto wc = reductions::weak_consensus_from_any(solver, *rp);

  std::uint64_t reduced = 0, direct = 0;
  RunOptions opts;
  opts.record_trace = false;
  for (auto _ : state) {
    for (int b : {0, 1}) {
      const validity::InputConfig& c = b == 0 ? rp->c0 : rp->c1;
      std::vector<Value> direct_proposals(params.n);
      for (ProcessId p = 0; p < params.n; ++p) direct_proposals[p] = *c[p];
      direct = run_execution(params, solver, direct_proposals,
                             Adversary::none(), opts)
                   .messages_sent_by_correct;
      reduced = run_all_correct(params, wc, Value::bit(b), opts)
                    .messages_sent_by_correct;
    }
  }
  state.counters["solver_msgs"] = static_cast<double>(direct);
  state.counters["reduced_msgs"] = static_cast<double>(reduced);
  state.counters["extra_messages"] =
      static_cast<double>(reduced) - static_cast<double>(direct);
}

void ReduceFromStrongConsensus(benchmark::State& state) {
  SystemParams params{7, 2};
  measure(state, validity::strong_validity(7, 2), params,
          protocols::phase_king_consensus());
}

void ReduceFromByzantineBroadcast(benchmark::State& state) {
  SystemParams params{7, 3};
  auto auth = make_auth(7);
  measure(state, validity::sender_validity(7, 3, 0), params,
          protocols::dolev_strong_broadcast(auth, 0));
}

void ReduceFromInteractiveConsistency(benchmark::State& state) {
  SystemParams params{4, 1};
  measure(state, validity::ic_validity(4, 1), params,
          protocols::eig_interactive_consistency());
}

void ReduceFromAuthIC(benchmark::State& state) {
  SystemParams params{6, 2};
  auto auth = make_auth(6);
  measure(state, validity::ic_validity(6, 2), params,
          protocols::auth_interactive_consistency(auth));
}

void ReduceFromExternalValidityCorollary1(benchmark::State& state) {
  // Corollary 1: weak consensus from an External-Validity algorithm with
  // two differing fault-free executions, again at zero extra cost.
  SystemParams params{7, 2};
  auto auth = make_auth(7);
  auto ev = protocols::external_validity_agreement(
      auth, [](const Value& v) { return v.is_str(); });
  RunOptions opts;
  opts.record_trace = false;
  RunResult r0 = run_all_correct(params, ev, Value{"tx:0"}, opts);
  auto wc = reductions::weak_from_external_validity(
      ev, Value{"tx:0"}, Value{"tx:1"}, *r0.unanimous_correct_decision());

  std::uint64_t reduced = 0;
  for (auto _ : state) {
    reduced = run_all_correct(params, wc, Value::bit(1), opts)
                  .messages_sent_by_correct;
  }
  std::uint64_t direct =
      run_all_correct(params, ev, Value{"tx:1"}, opts)
          .messages_sent_by_correct;
  state.counters["solver_msgs"] = static_cast<double>(direct);
  state.counters["reduced_msgs"] = static_cast<double>(reduced);
  state.counters["extra_messages"] =
      static_cast<double>(reduced) - static_cast<double>(direct);
}

}  // namespace
}  // namespace ba::bench

BENCHMARK(ba::bench::ReduceFromStrongConsensus)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::ReduceFromByzantineBroadcast)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::ReduceFromInteractiveConsistency)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::ReduceFromAuthIC)->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::ReduceFromExternalValidityCorollary1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
