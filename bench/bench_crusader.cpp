// E12 — Crusader broadcast [13] (related work §6): even the relaxation that
// permits bottom() decisions costs Theta(n^2) messages — the Abraham-Stern
// result the paper cites as a sibling of its own bound.
//
// Expected shape: the 2-round echo protocol scales quadratically in n and
// clears t^2/32 comfortably; under an equivocating sender the correct
// processes split only between {bit, bottom}, never between the two bits
// (split_bits = 0 in every row).

#include "bench_util.h"

namespace ba::bench {
namespace {

void CrusaderCost(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const SystemParams params{n, (n - 1) / 3};
  std::uint64_t msgs = 0;
  for (auto _ : state) {
    msgs = fault_free_messages(params, protocols::crusader_broadcast_bit(0),
                               Value::bit(1));
  }
  state.counters["n"] = n;
  state.counters["t"] = params.t;
  state.counters["msgs"] = static_cast<double>(msgs);
  state.counters["bound_t2_32"] =
      static_cast<double>(lowerbound::lemma1_bound(params.t));
}

void CrusaderUnderEquivocation(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const SystemParams params{n, (n - 1) / 3};
  Adversary adv;
  adv.faulty = ProcessSet{{0}};
  adv.byzantine = adv.faulty;
  adv.byzantine_factory = byz_equivocate_bits(2);

  int bits0 = 0, bits1 = 0, bottoms = 0;
  for (auto _ : state) {
    std::vector<Value> proposals(n, Value::bit(0));
    RunResult res = run_execution(params, protocols::crusader_broadcast_bit(0),
                                  proposals, adv);
    bits0 = bits1 = bottoms = 0;
    for (ProcessId p = 1; p < n; ++p) {
      const Value& d = *res.decisions[p];
      if (d == Value::bit(0)) {
        ++bits0;
      } else if (d == Value::bit(1)) {
        ++bits1;
      } else {
        ++bottoms;
      }
    }
  }
  state.counters["n"] = n;
  state.counters["decided_0"] = bits0;
  state.counters["decided_1"] = bits1;
  state.counters["decided_bottom"] = bottoms;
  state.counters["split_bits"] = (bits0 > 0 && bits1 > 0) ? 1 : 0;
}

}  // namespace
}  // namespace ba::bench

BENCHMARK(ba::bench::CrusaderCost)
    ->Arg(7)->Arg(13)->Arg(25)->Arg(49)->Arg(97)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::CrusaderUnderEquivocation)
    ->Arg(7)->Arg(13)->Arg(25)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
