// E14 — The Dolev-Reischuk bound for Byzantine broadcast [51] (§1, §6),
// executably: cut-based attacks on sub-quadratic broadcast candidates vs the
// uncuttable Dolev-Strong.
//
// Expected shape: candidates whose receivers hear from <= t processes fall
// at every size with verified certificates (the cut_size column shows how
// thin their information flow is); Dolev-Strong's min in-neighbourhood is
// n - 1, far above any t < n - 1 fault budget, and its message count is
// comfortably quadratic.

#include "bench_util.h"

#include "lowerbound/dolev_reischuk.h"
#include "protocols/broadcast.h"

namespace ba::bench {
namespace {

void run_dr(benchmark::State& state, const ProtocolFactory& protocol,
            const SystemParams& params) {
  lowerbound::BroadcastAttackReport report;
  for (auto _ : state) {
    report = lowerbound::attack_broadcast(params, protocol, 0, Value::bit(0),
                                          Value::bit(1));
  }
  int cert_ok = -1;
  if (report.certificate) {
    cert_ok = lowerbound::verify_certificate(*report.certificate, protocol)
                      .ok
                  ? 1
                  : 0;
  }
  state.counters["n"] = params.n;
  state.counters["t"] = params.t;
  state.counters["violation"] = report.violation_found ? 1 : 0;
  state.counters["cert_ok"] = cert_ok;
  state.counters["cut_size"] = static_cast<double>(report.cut_size);
  state.counters["min_in_nbh"] =
      static_cast<double>(report.min_in_neighbourhood);
  state.counters["msgs"] = static_cast<double>(report.fault_free_messages);
}

void DrDirectBroadcast(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  run_dr(state, protocols::bb_candidate_direct(0), SystemParams{n, n / 2});
}

void DrRelayRing(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  run_dr(state, protocols::bb_candidate_relay_ring(0, 2),
         SystemParams{n, n / 2});
}

void DrDolevStrong(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  SystemParams params{n, n / 2};
  auto auth = make_auth(n);
  run_dr(state, protocols::dolev_strong_broadcast(auth, 0), params);
}

}  // namespace
}  // namespace ba::bench

BENCHMARK(ba::bench::DrDirectBroadcast)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::DrRelayRing)
    ->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::DrDolevStrong)
    ->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
