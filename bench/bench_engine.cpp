// R-engine — throughput of the execution-backend seam (src/engine/): the
// bench_runtime workload set (bench_util.h) run through every backend the
// engine::Registry knows, on one dispatch path. Per-backend rows use the
// BENCH_runtime.json row schema, so the lockstep section is directly
// comparable with the runtime baseline and the sim section prices the event
// loop on identical work.
//
// The full run drops BENCH_engine.json next to the binary:
//
//   { "experiment": "engine_throughput",
//     "backends": [ { "backend": "lockstep", "rows": [...] },
//                   { "backend": "sim",      "rows": [...] } ] }
//
// CI's bench-smoke job uploads the artifact alongside BENCH_runtime.json
// and BENCH_sim.json.

#include "bench_util.h"

#include <chrono>
#include <fstream>
#include <map>
#include <string>
#include <tuple>
#include <vector>

namespace ba::bench {
namespace {

struct EngineRow {
  std::string protocol;
  std::uint32_t n{0};
  std::uint32_t t{0};
  double rounds_per_run{0};
  double msgs_per_run{0};
  double rounds_per_sec{0};
  double msgs_per_sec{0};
  double peak_rss_kb{0};
};

// Keyed by (backend, protocol, n); google-benchmark may re-enter a benchmark
// to reach min_time, so the last (longest) measurement wins.
using RowKey = std::tuple<std::string, std::string, std::uint32_t>;
std::map<RowKey, EngineRow>& rows() {
  static std::map<RowKey, EngineRow> r;
  return r;
}

void write_engine_bench_json(std::ostream& os) {
  os << "{\n"
     << "  \"experiment\": \"engine_throughput\",\n"
     << "  \"backends\": [\n";
  const std::vector<std::string> backends = engine::Registry::global().names();
  for (std::size_t b = 0; b < backends.size(); ++b) {
    os << "    {\"backend\": \"" << backends[b] << "\", \"rows\": [\n";
    std::size_t in_backend = 0;
    for (const auto& [key, row] : rows()) {
      if (std::get<0>(key) == backends[b]) ++in_backend;
    }
    std::size_t i = 0;
    for (const auto& [key, row] : rows()) {
      if (std::get<0>(key) != backends[b]) continue;
      os << "      {\"protocol\": \"" << row.protocol << "\", \"n\": " << row.n
         << ", \"t\": " << row.t
         << ", \"rounds_per_run\": " << row.rounds_per_run
         << ", \"msgs_per_run\": " << row.msgs_per_run
         << ", \"rounds_per_sec\": " << row.rounds_per_sec
         << ", \"msgs_per_sec\": " << row.msgs_per_sec
         << ", \"peak_rss_kb\": " << row.peak_rss_kb << "}"
         << (++i < in_backend ? "," : "") << "\n";
    }
    os << "    ]}" << (b + 1 < backends.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

void EngineThroughput(benchmark::State& state, const std::string& backend_name,
                      const std::string& workload_name) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const Workload w = make_workload(workload_name, n);
  const engine::BackendHandle backend = engine::make_backend(backend_name);

  RunOptions opts;
  opts.record_trace = false;  // hot path proper, like bench_runtime

  std::uint64_t msgs = 0;
  std::uint64_t rounds = 0;
  std::uint64_t iters = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    RunResult res =
        backend->run(w.params, w.factory, w.proposals, Adversary::none(),
                     opts);
    msgs += res.messages_sent_total;
    rounds += res.rounds_executed;
    ++iters;
    benchmark::DoNotOptimize(res.decisions.data());
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  EngineRow row;
  row.protocol = workload_name;
  row.n = n;
  row.t = w.params.t;
  row.rounds_per_run =
      static_cast<double>(rounds) / static_cast<double>(iters);
  row.msgs_per_run = static_cast<double>(msgs) / static_cast<double>(iters);
  row.rounds_per_sec = secs > 0 ? static_cast<double>(rounds) / secs : 0;
  row.msgs_per_sec = secs > 0 ? static_cast<double>(msgs) / secs : 0;
  row.peak_rss_kb = peak_rss_kb();
  rows()[{backend_name, workload_name, n}] = row;

  state.counters["rounds_per_run"] = row.rounds_per_run;
  state.counters["msgs_per_run"] = row.msgs_per_run;
  state.counters["rounds_per_sec"] = row.rounds_per_sec;
  state.counters["msgs_per_sec"] = row.msgs_per_sec;
  state.counters["peak_rss_kb"] = row.peak_rss_kb;
}

void LockstepDolevStrong(benchmark::State& state) {
  EngineThroughput(state, "lockstep", "dolev_strong");
}
void LockstepPhaseKing(benchmark::State& state) {
  EngineThroughput(state, "lockstep", "phase_king");
}
void SimDolevStrong(benchmark::State& state) {
  EngineThroughput(state, "sim", "dolev_strong");
}
void SimPhaseKing(benchmark::State& state) {
  EngineThroughput(state, "sim", "phase_king");
}

}  // namespace
}  // namespace ba::bench

// n in {8, 16, 32}: the eig family is excluded here (its O(n^t) payloads
// dwarf the dispatch cost under measurement; bench_runtime still tracks it).
BENCHMARK(ba::bench::LockstepDolevStrong)
    ->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::LockstepPhaseKing)
    ->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::SimDolevStrong)
    ->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::SimPhaseKing)
    ->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::ofstream out("BENCH_engine.json");
  ba::bench::write_engine_bench_json(out);
  return 0;
}
