// E7 — Theorem 4 / Theorem 5: the solvability landscape.
//
// For each canned validity property and (n, t), this reports the Theorem 4
// verdict (trivial / CC / authenticated / unauthenticated) and times the
// exact CC decision procedure (whose cost is the |I| * |Cnt| * |V_O|
// enumeration).
//
// Expected shape:
//   weak, sender, IC   : CC holds at every resilience (auth-solvable always,
//                        unauth iff n > 3t);
//   strong             : CC iff n > 2t (Theorem 5);
//   any-proposed binary: CC iff n > 2t; ternary fails even at some n > 2t;
//   constant           : trivial.

#include "bench_util.h"

namespace ba::bench {
namespace {

void verdict_counters(benchmark::State& state,
                      const validity::ValidityProperty& prop, std::uint32_t n,
                      std::uint32_t t) {
  validity::SolvabilityVerdict v;
  for (auto _ : state) {
    v = validity::solvability(prop, n, t);
  }
  state.counters["n"] = n;
  state.counters["t"] = t;
  state.counters["trivial"] = v.trivial ? 1 : 0;
  state.counters["cc"] = v.cc ? 1 : 0;
  state.counters["auth"] = v.authenticated_solvable ? 1 : 0;
  state.counters["unauth"] = v.unauthenticated_solvable ? 1 : 0;
  state.counters["input_configs"] = static_cast<double>(
      validity::count_input_configs(n, t, prop.input_domain.size()));
}

void SolvabilityWeak(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto t = static_cast<std::uint32_t>(state.range(1));
  verdict_counters(state, validity::weak_validity(n, t), n, t);
}

void SolvabilityStrong(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto t = static_cast<std::uint32_t>(state.range(1));
  verdict_counters(state, validity::strong_validity(n, t), n, t);
}

void SolvabilitySender(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto t = static_cast<std::uint32_t>(state.range(1));
  verdict_counters(state, validity::sender_validity(n, t, 0), n, t);
}

void SolvabilityIC(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto t = static_cast<std::uint32_t>(state.range(1));
  verdict_counters(state, validity::ic_validity(n, t), n, t);
}

void SolvabilityAnyProposedBinary(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto t = static_cast<std::uint32_t>(state.range(1));
  verdict_counters(state, validity::any_proposed_validity(n, t), n, t);
}

void SolvabilityAnyProposedTernary(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto t = static_cast<std::uint32_t>(state.range(1));
  verdict_counters(
      state, validity::any_proposed_validity(n, t, validity::int_domain(3)),
      n, t);
}

void SolvabilityConstant(benchmark::State& state) {
  verdict_counters(state, validity::constant_validity(5, 2), 5, 2);
}

}  // namespace
}  // namespace ba::bench

// (n, t) grid spanning the interesting thresholds n = 2t and n = 3t.
#define BA_GRID                                                       \
  ->Args({4, 1})->Args({5, 2})->Args({4, 2})->Args({6, 2})->Args({7, 2})
BENCHMARK(ba::bench::SolvabilityWeak) BA_GRID->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::SolvabilityStrong)
    BA_GRID->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::SolvabilitySender)
    BA_GRID->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::SolvabilityIC)
    ->Args({3, 1})->Args({4, 1})->Args({4, 2})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::SolvabilityAnyProposedBinary)
    BA_GRID->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::SolvabilityAnyProposedTernary)
    ->Args({6, 2})->Args({7, 2})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::SolvabilityConstant)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
