// E13 — Bit complexity of the protocol suite (related-work metric
// [12, 20, 34, 41]): payload bytes sent by correct processes, fault-free,
// alongside the message counts of E5.
//
// Expected shape: the ordering of protocols by bytes matches the related
// work's story — Dolev-Strong's signature chains make its per-message cost
// grow with the relay depth (bytes/message ~ chain length), EIG's messages
// grow exponentially with t, while phase king moves constant-size bits.

#include "bench_util.h"

namespace ba::bench {
namespace {

void measure(benchmark::State& state, const ProtocolFactory& protocol,
             const SystemParams& params, const Value& proposal) {
  std::uint64_t msgs = 0, bytes = 0;
  for (auto _ : state) {
    RunResult res = run_all_correct(params, protocol, proposal);
    msgs = res.trace.message_complexity();
    bytes = res.trace.payload_bytes_sent_by_correct();
  }
  state.counters["n"] = params.n;
  state.counters["t"] = params.t;
  state.counters["msgs"] = static_cast<double>(msgs);
  state.counters["payload_bytes"] = static_cast<double>(bytes);
  state.counters["bytes_per_msg"] =
      msgs == 0 ? 0 : static_cast<double>(bytes) / static_cast<double>(msgs);
}

void BitsDolevStrong(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  SystemParams params{n, n / 2};
  auto auth = make_auth(n);
  measure(state, protocols::dolev_strong_broadcast(auth, 0), params,
          Value::bit(1));
}

void BitsPhaseKing(benchmark::State& state) {
  const auto t = static_cast<std::uint32_t>(state.range(0));
  SystemParams params{3 * t + 1, t};
  measure(state, protocols::phase_king_consensus(), params, Value::bit(1));
}

void BitsEigIC(benchmark::State& state) {
  const auto t = static_cast<std::uint32_t>(state.range(0));
  SystemParams params{3 * t + 1, t};
  measure(state, protocols::eig_interactive_consistency(), params,
          Value::bit(1));
}

void BitsAuthIC(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  SystemParams params{n, n / 3};
  auto auth = make_auth(n);
  measure(state, protocols::auth_interactive_consistency(auth), params,
          Value::bit(1));
}

void BitsTurpinCoanLongValues(benchmark::State& state) {
  // Long proposals: Turpin-Coan moves the long value only in its two extra
  // rounds; the binary phase moves bits — the "extension protocol" saving.
  const auto len = static_cast<std::uint32_t>(state.range(0));
  SystemParams params{7, 2};
  measure(state, protocols::turpin_coan_multivalued(), params,
          Value{std::string(len, 'x')});
}

}  // namespace
}  // namespace ba::bench

BENCHMARK(ba::bench::BitsDolevStrong)
    ->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::BitsPhaseKing)
    ->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::BitsEigIC)
    ->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::BitsAuthIC)
    ->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::BitsTurpinCoanLongValues)
    ->Arg(16)->Arg(256)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
