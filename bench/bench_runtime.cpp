// R-runtime — hot-path throughput of the synchronous round executor
// (`run_execution`). Unlike the experiment benches, which regenerate figures
// of the paper, this bench tracks the *runtime itself*: rounds/sec and
// messages/sec for three protocol families whose payload shapes stress the
// executor differently, across n in {8, 16, 32, 64}:
//
//   * dolev_strong  — authenticated broadcast; payloads are signature chains
//     that grow with the round, so the fan-out of one payload to n-1
//     receivers dominates (the copy-on-write Value fast path);
//   * eig           — interactive consistency; round-r payloads are O(n^t)
//     report vectors (deep nested-vector traffic);
//   * phase_king    — binary consensus; tiny payloads across 3(t+1) rounds
//     (pure round-loop overhead: allocation, routing, dedup).
//
// Counters: rounds_per_sec, msgs_per_sec (throughput), msgs_per_run /
// rounds_per_run (sanity: the workload itself must not drift between
// baselines), peak_rss_kb (getrusage high-water proxy — monotone across the
// process, so it upper-bounds, not isolates, a single benchmark's footprint).
//
// The full run drops BENCH_runtime.json next to the binary; the committed
// copy at the repo root is the perf baseline this series is tracked against
// (see docs/RUNTIME_PERF.md). The workload definitions live in bench_util.h,
// shared with bench_sim and bench_engine; executions dispatch through the
// engine::Registry's lockstep backend (docs/ENGINE.md) like every other
// driver in the repo.

#include "bench_util.h"

#include <chrono>
#include <fstream>
#include <iomanip>
#include <map>
#include <string>
#include <vector>

namespace ba::bench {
namespace {

struct RuntimeRow {
  std::string protocol;
  std::uint32_t n{0};
  std::uint32_t t{0};
  double rounds_per_run{0};
  double msgs_per_run{0};
  double rounds_per_sec{0};
  double msgs_per_sec{0};
  double peak_rss_kb{0};
};

// Keyed by (protocol, n); google-benchmark may re-enter a benchmark to reach
// min_time, so the last (longest, most trustworthy) measurement wins.
std::map<std::pair<std::string, std::uint32_t>, RuntimeRow>& rows() {
  static std::map<std::pair<std::string, std::uint32_t>, RuntimeRow> r;
  return r;
}

void write_runtime_bench_json(std::ostream& os) {
  // Fixed-point only: the committed copy is a diffable regression baseline
  // (tools/check_bench_regression.py), and default ostream formatting spills
  // into scientific notation (2.10567e+06) once throughputs pass ~1M.
  os << std::fixed << std::setprecision(2);
  os << "{\n"
     << "  \"experiment\": \"runtime_throughput\",\n"
     << "  \"rows\": [\n";
  std::size_t i = 0;
  for (const auto& [key, row] : rows()) {
    os << "    {\"protocol\": \"" << row.protocol << "\", \"n\": " << row.n
       << ", \"t\": " << row.t << ", \"rounds_per_run\": " << row.rounds_per_run
       << ", \"msgs_per_run\": " << row.msgs_per_run
       << ", \"rounds_per_sec\": " << row.rounds_per_sec
       << ", \"msgs_per_sec\": " << row.msgs_per_sec << ", \"peak_rss_kb\": "
       << static_cast<long long>(row.peak_rss_kb) << "}"
       << (++i < rows().size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

void RuntimeThroughput(benchmark::State& state, const std::string& name) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const Workload w = make_workload(name, n);

  // One registry dispatch per *run* (not per message): the engine seam the
  // other drivers use, at noise-level cost for a throughput bench.
  const engine::BackendHandle backend = engine::make_backend("lockstep");
  RunOptions opts;
  opts.record_trace = false;  // complexity-bench mode: the hot path proper

  std::uint64_t msgs = 0;
  std::uint64_t rounds = 0;
  std::uint64_t iters = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    RunResult res =
        backend->run(w.params, w.factory, w.proposals, Adversary::none(),
                     opts);
    msgs += res.messages_sent_total;
    rounds += res.rounds_executed;
    ++iters;
    benchmark::DoNotOptimize(res.decisions.data());
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  RuntimeRow row;
  row.protocol = name;
  row.n = n;
  row.t = w.params.t;
  row.rounds_per_run =
      static_cast<double>(rounds) / static_cast<double>(iters);
  row.msgs_per_run = static_cast<double>(msgs) / static_cast<double>(iters);
  row.rounds_per_sec =
      secs > 0 ? static_cast<double>(rounds) / secs : 0;
  row.msgs_per_sec = secs > 0 ? static_cast<double>(msgs) / secs : 0;
  row.peak_rss_kb = peak_rss_kb();
  rows()[{name, n}] = row;

  state.counters["rounds_per_run"] = row.rounds_per_run;
  state.counters["msgs_per_run"] = row.msgs_per_run;
  state.counters["rounds_per_sec"] = row.rounds_per_sec;
  state.counters["msgs_per_sec"] = row.msgs_per_sec;
  state.counters["peak_rss_kb"] = row.peak_rss_kb;
}

void DolevStrong(benchmark::State& state) {
  RuntimeThroughput(state, "dolev_strong");
}
void Eig(benchmark::State& state) { RuntimeThroughput(state, "eig"); }
void PhaseKing(benchmark::State& state) {
  RuntimeThroughput(state, "phase_king");
}

}  // namespace
}  // namespace ba::bench

// Eig runs last: it is the largest allocator of the three (tens of MB of
// arena + shared report payloads at n=128 — down from gigabytes before the
// arena encoding), and on small machines the allocator/OS reclaim that
// follows would otherwise bleed into the next family's timing estimate.
BENCHMARK(ba::bench::DolevStrong)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::PhaseKing)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::Eig)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::ofstream out("BENCH_runtime.json");
  ba::bench::write_runtime_bench_json(out);
  return 0;
}
