// E1 — Figure 1: isolation propagation.
//
// The figure illustrates that when group G is isolated at round R, G's own
// sending behaviour can change from round R+1 onward, and the rest of the
// system (G-bar), reacting to G's changed messages, deviates from the
// fault-free execution from round R+2 onward.
//
// This bench measures, for each (n, R), the first round in which G (resp.
// G-bar) sends a different message set than in the fault-free execution E_0.
// Expected shape: divergence_G = R+1, divergence_Gbar = R+2 (or 0 = never,
// when the protocol has already gone quiet).

#include "bench_util.h"

#include "protocols/common.h"

namespace ba::bench {
namespace {

/// A flooding protocol whose sends depend on everything received so far:
/// every process multicasts the running sum of all payloads it has seen,
/// for t + 1 rounds, then decides it. Any change in a process's inbox
/// changes its next-round messages, which makes the Figure 1 propagation
/// (G deviates at R+1, G-bar at R+2) directly observable.
class FloodSum final : public protocols::DecidingProcess {
 public:
  explicit FloodSum(const ProcessContext& ctx)
      : ctx_(ctx), sum_(ctx.proposal.try_bit().value_or(0)) {}

  Outbox outbox_for_round(Round r) override {
    Outbox out;
    if (r <= ctx_.params.t + 1) {
      for (ProcessId p = 0; p < ctx_.params.n; ++p) {
        if (p != ctx_.self) out.push_back(Outgoing{p, Value{sum_}});
      }
    }
    return out;
  }
  void deliver(Round r, const Inbox& inbox) override {
    for (const Message& m : inbox) {
      sum_ += m.payload.is_int() ? m.payload.as_int() : 0;
    }
    sum_ += 1;  // round salt: consecutive rounds always differ
    if (r == ctx_.params.t + 1) decide(Value{sum_});
  }

 private:
  ProcessContext ctx_;
  std::int64_t sum_;
};

ProtocolFactory flood_sum() {
  return [](const ProcessContext& ctx) {
    return std::make_unique<FloodSum>(ctx);
  };
}

/// First round where `p`'s sent set differs between the two traces
/// (0 if never).
Round first_send_divergence(const ExecutionTrace& a, const ExecutionTrace& b,
                            ProcessId p) {
  const std::size_t rounds =
      std::max(a.procs[p].rounds.size(), b.procs[p].rounds.size());
  for (std::size_t r = 0; r < rounds; ++r) {
    static const std::vector<Message> kEmpty;
    const auto& sa = r < a.procs[p].rounds.size() ? a.procs[p].rounds[r].sent
                                                  : kEmpty;
    const auto& sb = r < b.procs[p].rounds.size() ? b.procs[p].rounds[r].sent
                                                  : kEmpty;
    if (sa != sb) return static_cast<Round>(r + 1);
  }
  return 0;
}

void Fig1Isolation(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto isolate_at = static_cast<Round>(state.range(1));
  const SystemParams params{n, n / 2};
  // The paper's Figure 1 is protocol-agnostic; the flooding protocol makes
  // every inbox change visible in the next round's sends.
  ProtocolFactory wc = flood_sum();
  const ProcessSet g = ProcessSet::range(n - std::max(1u, params.t / 4), n);

  ExecutionTrace e0;
  ExecutionTrace eg;
  for (auto _ : state) {
    e0 = run_all_correct(params, wc, Value::bit(1)).trace;
    std::vector<Value> proposals(n, Value::bit(1));
    eg = run_execution(params, wc, proposals, isolate_group(g, isolate_at))
             .trace;
  }

  Round div_g = 0;
  Round div_gbar = 0;
  for (ProcessId p = 0; p < n; ++p) {
    Round d = first_send_divergence(e0, eg, p);
    if (d == 0) continue;
    Round& slot = g.contains(p) ? div_g : div_gbar;
    if (slot == 0 || d < slot) slot = d;
  }
  state.counters["isolate_at_R"] = isolate_at;
  state.counters["diverge_G"] = div_g;          // expected R + 1 (or 0)
  state.counters["diverge_Gbar"] = div_gbar;    // expected R + 2 (or 0)
  state.counters["msgs_E0"] = static_cast<double>(e0.message_complexity());
  state.counters["msgs_EG"] = static_cast<double>(eg.message_complexity());
}

}  // namespace
}  // namespace ba::bench

BENCHMARK(ba::bench::Fig1Isolation)
    ->ArgsProduct({{8, 16, 32}, {1, 2, 3}})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
