// E5 — Matching upper bounds: message complexity of the library's correct
// protocols versus the t^2/32 lower bound, as n grows.
//
// Expected shape: every correct protocol scales at least quadratically in t
// and clears the bound everywhere (ratio = msgs / bound >= 1, typically
// orders of magnitude); Dolev-Strong broadcast is Theta(n^2) per extracted
// value, phase king Theta(n^2 t), authenticated IC Theta(n^3).

#include "bench_util.h"
#include "protocols/comm_specs.h"
#include "statics/analyzer.h"

namespace ba::bench {
namespace {

void report(benchmark::State& state, const SystemParams& params,
            std::uint64_t msgs, const char* spec_name) {
  const std::uint64_t bound = lowerbound::lemma1_bound(params.t);
  state.counters["n"] = params.n;
  state.counters["t"] = params.t;
  state.counters["msgs"] = static_cast<double>(msgs);
  state.counters["bound_t2_32"] = static_cast<double>(bound);
  state.counters["ratio"] =
      bound == 0 ? 0 : static_cast<double>(msgs) / static_cast<double>(bound);
  // Bound-vs-observed: the statically derived worst-case cap next to what
  // the probe actually measured (obs/static <= 1 whenever the CommSpec is
  // sound; the conformance suite asserts it, the bench just records it).
  if (const statics::CommSpec* spec = protocols::find_comm_spec(spec_name)) {
    const std::uint64_t static_bound =
        statics::budget_at(statics::analyze(*spec), params).messages;
    state.counters["static_bound"] = static_cast<double>(static_bound);
    state.counters["obs_static_ratio"] =
        static_bound == 0 ? 0
                          : static_cast<double>(msgs) /
                                static_cast<double>(static_bound);
  }
}

void UpperBoundDolevStrongBroadcast(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  SystemParams params{n, n / 2};
  auto auth = make_auth(n);
  auto bb = protocols::dolev_strong_broadcast(auth, 0);
  std::uint64_t msgs = 0;
  for (auto _ : state) {
    msgs = worst_observed_messages(params, bb, Value::bit(0),
                                   lowerbound::default_probe_schedule(params));
  }
  report(state, params, msgs, "dolev-strong");
}

void UpperBoundWeakConsensusAuth(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  SystemParams params{n, n - 1};  // maximal t: the hardest bound
  auto auth = make_auth(n);
  auto wc = protocols::weak_consensus_auth(auth);
  std::uint64_t msgs = 0;
  for (auto _ : state) {
    msgs = worst_observed_messages(params, wc, Value::bit(0),
                                   lowerbound::default_probe_schedule(params));
  }
  report(state, params, msgs, "dolev-strong-weak");
}

void UpperBoundPhaseKing(benchmark::State& state) {
  const auto t = static_cast<std::uint32_t>(state.range(0));
  SystemParams params{3 * t + 1, t};
  std::uint64_t msgs = 0;
  for (auto _ : state) {
    msgs = worst_observed_messages(params, protocols::phase_king_consensus(),
                                   Value::bit(0),
                                   lowerbound::default_probe_schedule(params));
  }
  report(state, params, msgs, "phase-king-strong");
}

void UpperBoundAuthIC(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  SystemParams params{n, n / 3};
  auto auth = make_auth(n);
  auto ic = protocols::auth_interactive_consistency(auth);
  std::uint64_t msgs = 0;
  for (auto _ : state) {
    msgs = fault_free_messages(params, ic, Value::bit(0));
  }
  report(state, params, msgs, "auth-ic");
}

void UpperBoundUnauthICBits(benchmark::State& state) {
  const auto t = static_cast<std::uint32_t>(state.range(0));
  SystemParams params{3 * t + 1, t};
  std::uint64_t msgs = 0;
  for (auto _ : state) {
    msgs = fault_free_messages(
        params, protocols::unauth_interactive_consistency_bits(),
        Value::bit(0));
  }
  report(state, params, msgs, "unauth-ic-bits");
}

void UpperBoundEigIC(benchmark::State& state) {
  const auto t = static_cast<std::uint32_t>(state.range(0));
  SystemParams params{3 * t + 1, t};
  std::uint64_t msgs = 0;
  for (auto _ : state) {
    msgs = fault_free_messages(params,
                               protocols::eig_interactive_consistency(),
                               Value::bit(0));
  }
  report(state, params, msgs, "eig-ic");
}

void UpperBoundExternalValidity(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  SystemParams params{n, n / 2};
  auto auth = make_auth(n);
  auto ev = protocols::external_validity_agreement(
      auth, [](const Value& v) { return v.is_str(); });
  std::uint64_t msgs = 0;
  for (auto _ : state) {
    msgs = fault_free_messages(params, ev, Value{"tx"});
  }
  report(state, params, msgs, "external-validity");
}

}  // namespace
}  // namespace ba::bench

BENCHMARK(ba::bench::UpperBoundDolevStrongBroadcast)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::UpperBoundWeakConsensusAuth)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::UpperBoundPhaseKing)
    ->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::UpperBoundAuthIC)
    ->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::UpperBoundUnauthICBits)
    ->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::UpperBoundEigIC)
    ->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::UpperBoundExternalValidity)
    ->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
