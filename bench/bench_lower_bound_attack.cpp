// E4 — Theorem 2 / Lemma 1: the attack engine against sub-quadratic
// weak-consensus candidates, across system sizes.
//
// Expected shape: every candidate whose message complexity is o(t^2) yields
// a *verified* violation certificate (violation = 1, cert_ok = 1) at every
// size, while the correct protocols never do (violation = 0) and their
// observed message complexity clears t^2/32 (msgs >= bound).

#include "bench_util.h"

namespace ba::bench {
namespace {

void run_attack(benchmark::State& state, const ProtocolFactory& protocol,
                const SystemParams& params) {
  lowerbound::AttackReport report;
  for (auto _ : state) {
    report = lowerbound::attack_weak_consensus(params, protocol);
  }
  int cert_ok = -1;
  if (report.certificate) {
    cert_ok = lowerbound::verify_certificate(*report.certificate, protocol)
                      .ok
                  ? 1
                  : 0;
  }
  state.counters["n"] = params.n;
  state.counters["t"] = params.t;
  state.counters["violation"] = report.violation_found ? 1 : 0;
  state.counters["cert_ok"] = cert_ok;
  state.counters["msgs"] =
      static_cast<double>(report.max_message_complexity);
  state.counters["bound_t2_32"] = static_cast<double>(report.bound);
}

void AttackSilent(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  run_attack(state, protocols::wc_candidate_silent(1),
             SystemParams{n, n - 1});
}

void AttackLeaderBeacon(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  run_attack(state, protocols::wc_candidate_leader_beacon(),
             SystemParams{n, n - 1});
}

void AttackGossipRing(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  run_attack(state, protocols::wc_candidate_gossip_ring(2, 3),
             SystemParams{n, n - 1});
}

void AttackCorrectDolevStrong(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  SystemParams params{n, n - 1};
  auto auth = make_auth(n);
  run_attack(state, protocols::weak_consensus_auth(auth), params);
}

void AttackCorrectPhaseKing(benchmark::State& state) {
  const auto t = static_cast<std::uint32_t>(state.range(0));
  SystemParams params{3 * t + 1, t};
  run_attack(state, protocols::weak_consensus_unauth(), params);
}

}  // namespace
}  // namespace ba::bench

BENCHMARK(ba::bench::AttackSilent)
    ->Arg(12)->Arg(24)->Arg(48)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::AttackLeaderBeacon)
    ->Arg(12)->Arg(24)->Arg(48)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::AttackGossipRing)
    ->Arg(12)->Arg(24)->Arg(48)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::AttackCorrectDolevStrong)
    ->Arg(12)->Arg(16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::AttackCorrectPhaseKing)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
