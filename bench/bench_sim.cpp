// R-sim — throughput of the discrete-event simulator (src/sim/): events/sec
// and messages/sec for Dolev-Strong broadcast over the zero-jitter
// synchronous model at n in {8, 16, 32}. Complements bench_runtime (the
// lockstep executor on the same workload): the delta between the two is the
// cost of the event loop itself — the priority queue, per-message delivery
// events, and per-link metric updates.
//
// The full run drops BENCH_sim.json next to the binary in the same schema
// as BENCH_runtime.json; CI's bench-smoke job uploads both artifacts.

#include "bench_util.h"

#include <chrono>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace ba::bench {
namespace {

struct SimRow {
  std::string protocol;
  std::uint32_t n{0};
  std::uint32_t t{0};
  double events_per_run{0};
  double msgs_per_run{0};
  double events_per_sec{0};
  double msgs_per_sec{0};
};

std::map<std::pair<std::string, std::uint32_t>, SimRow>& rows() {
  static std::map<std::pair<std::string, std::uint32_t>, SimRow> r;
  return r;
}

void write_sim_bench_json(std::ostream& os) {
  os << "{\n"
     << "  \"experiment\": \"sim_throughput\",\n"
     << "  \"rows\": [\n";
  std::size_t i = 0;
  for (const auto& [key, row] : rows()) {
    os << "    {\"protocol\": \"" << row.protocol << "\", \"n\": " << row.n
       << ", \"t\": " << row.t
       << ", \"events_per_run\": " << row.events_per_run
       << ", \"msgs_per_run\": " << row.msgs_per_run
       << ", \"events_per_sec\": " << row.events_per_sec
       << ", \"msgs_per_sec\": " << row.msgs_per_sec << "}"
       << (++i < rows().size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

void SimDolevStrong(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  // The same workload bench_runtime measures on the lockstep executor
  // (bench_util.h), so the delta between the two benches is the event loop.
  const Workload w = make_workload("dolev_strong", n);

  sim::SimConfig config;
  config.record_trace = false;  // hot path proper, like bench_runtime
  config.collect_metrics = true;

  std::uint64_t events = 0;
  std::uint64_t msgs = 0;
  std::uint64_t iters = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    sim::SimResult res = sim::simulate(w.params, w.factory, w.proposals,
                                       Adversary::none(), config);
    events += res.events_processed;
    msgs += res.run.messages_sent_total;
    ++iters;
    benchmark::DoNotOptimize(res.run.decisions.data());
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  SimRow row;
  row.protocol = w.name;
  row.n = n;
  row.t = w.params.t;
  row.events_per_run =
      static_cast<double>(events) / static_cast<double>(iters);
  row.msgs_per_run = static_cast<double>(msgs) / static_cast<double>(iters);
  row.events_per_sec = secs > 0 ? static_cast<double>(events) / secs : 0;
  row.msgs_per_sec = secs > 0 ? static_cast<double>(msgs) / secs : 0;
  rows()[{row.protocol, n}] = row;

  state.counters["events_per_run"] = row.events_per_run;
  state.counters["msgs_per_run"] = row.msgs_per_run;
  state.counters["events_per_sec"] = row.events_per_sec;
  state.counters["msgs_per_sec"] = row.msgs_per_sec;
}

}  // namespace
}  // namespace ba::bench

BENCHMARK(ba::bench::SimDolevStrong)
    ->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::ofstream out("BENCH_sim.json");
  ba::bench::write_sim_bench_json(out);
  return 0;
}
