// E8 — §4.3 / Corollary 1: the blockchain-style agreement problem with
// External Validity.
//
// Workload: clients issue MAC-signed transactions; validators run the
// rotating-leader External-Validity agreement to commit a chain of blocks.
// Reported: messages per committed block versus the t^2/32 bound, with the
// leader healthy and with crash-faulty leaders forcing view rotations.
//
// Expected shape: cost is Theta(n^2) per view; every row clears the bound;
// faulty leaders multiply the cost by the number of burned views.

#include <string>

#include "bench_util.h"

namespace ba::bench {
namespace {

/// "Client signatures": a transaction is valid iff it carries the MAC of the
/// client key over its body — the globally verifiable predicate of §4.3.
struct ClientWallet {
  crypto::SipKey key = crypto::derive_key(0xc11e47, 0);

  [[nodiscard]] Value sign_tx(const std::string& body) const {
    Bytes bytes(body.begin(), body.end());
    const std::uint64_t mac = crypto::siphash24(key, bytes);
    return Value::vec({Value{"tx"}, Value{body},
                       Value{static_cast<std::int64_t>(mac)}});
  }

  [[nodiscard]] bool verify_tx(const Value& v) const {
    if (!v.is_vec() || v.as_vec().size() != 3) return false;
    const ValueVec& f = v.as_vec();
    if (!f[0].is_str() || f[0].as_str() != "tx" || !f[1].is_str() ||
        !f[2].is_int()) {
      return false;
    }
    Bytes bytes(f[1].as_str().begin(), f[1].as_str().end());
    return crypto::siphash24(key, bytes) ==
           static_cast<std::uint64_t>(f[2].as_int());
  }
};

void CommitBlocks(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto crashed_leaders = static_cast<std::uint32_t>(state.range(1));
  const SystemParams params{n, n / 2};
  auto auth = make_auth(n);
  ClientWallet wallet;
  auto ev = protocols::external_validity_agreement(
      auth, [wallet](const Value& v) { return wallet.verify_tx(v); });

  constexpr int kBlocks = 3;
  std::uint64_t total_msgs = 0;
  bool all_valid = true;
  RunOptions opts;
  opts.record_trace = false;

  for (auto _ : state) {
    total_msgs = 0;
    all_valid = true;
    for (int blk = 0; blk < kBlocks; ++blk) {
      std::vector<Value> proposals(n);
      for (ProcessId p = 0; p < n; ++p) {
        proposals[p] =
            wallet.sign_tx("blk" + std::to_string(blk) + "-from-p" +
                           std::to_string(p));
      }
      Adversary adv;
      if (crashed_leaders > 0) {
        adv.faulty = ProcessSet::range(0, crashed_leaders);
        adv.byzantine = adv.faulty;
        adv.byzantine_factory = byz_silent();
      }
      RunResult res = run_execution(params, ev, proposals, adv, opts);
      total_msgs += res.messages_sent_by_correct;
      auto d = res.unanimous_correct_decision();
      if (!d || !wallet.verify_tx(*d)) all_valid = false;
    }
  }

  state.counters["n"] = n;
  state.counters["crashed_leaders"] = crashed_leaders;
  state.counters["msgs_per_block"] =
      static_cast<double>(total_msgs) / kBlocks;
  state.counters["bound_t2_32"] =
      static_cast<double>(lowerbound::lemma1_bound(params.t));
  state.counters["all_decisions_valid"] = all_valid ? 1 : 0;
}

void ForgedTransactionNeverCommitted(benchmark::State& state) {
  // A Byzantine leader proposing an incorrectly signed transaction burns its
  // view; the decided value is still client-signed.
  const SystemParams params{8, 3};
  auto auth = make_auth(8);
  ClientWallet wallet;
  auto ev = protocols::external_validity_agreement(
      auth, [wallet](const Value& v) { return wallet.verify_tx(v); });

  std::vector<Value> proposals(8, wallet.sign_tx("honest"));
  Adversary adv;
  adv.faulty = ProcessSet{{0}};
  adv.byzantine = adv.faulty;
  adv.byzantine_factory = byz_lie_proposal(
      ev, Value::vec({Value{"tx"}, Value{"forged"}, Value{12345}}));

  bool valid = true;
  RunOptions opts;
  opts.record_trace = false;
  for (auto _ : state) {
    RunResult res = run_execution(params, ev, proposals, adv, opts);
    auto d = res.unanimous_correct_decision();
    valid = d.has_value() && wallet.verify_tx(*d) &&
            d->as_vec()[1] == Value{"honest"};
  }
  state.counters["decided_client_signed"] = valid ? 1 : 0;
}

}  // namespace
}  // namespace ba::bench

BENCHMARK(ba::bench::CommitBlocks)
    ->Args({8, 0})->Args({16, 0})->Args({32, 0})
    ->Args({8, 2})->Args({16, 2})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::ForgedTransactionNeverCommitted)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
