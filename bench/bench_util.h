#pragma once

// Shared helpers for the experiment benches. Each bench binary regenerates
// one experiment from DESIGN.md §4 (a figure, lemma or theorem of the
// paper), reporting the measured quantities as benchmark counters so the
// series can be read straight off the bench output.

#include <benchmark/benchmark.h>

#include <sys/resource.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/ba.h"

namespace ba::bench {

inline std::shared_ptr<crypto::Authenticator> make_auth(std::uint32_t n,
                                                        std::uint64_t seed =
                                                            0xba5eba11) {
  return std::make_shared<crypto::Authenticator>(seed, n);
}

/// getrusage high-water RSS in KB — monotone across the process, so it
/// upper-bounds, not isolates, a single benchmark's footprint.
inline double peak_rss_kb() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss);
}

/// One throughput workload: a protocol family instantiated at size n with
/// its standard proposals. Shared by bench_runtime, bench_sim and
/// bench_engine so the three benches measure the *same* work and their
/// deltas isolate substrate cost.
struct Workload {
  std::string name;
  SystemParams params;
  ProtocolFactory factory;
  std::vector<Value> proposals;
};

/// The standard throughput workloads (see bench_runtime.cpp for why these
/// three families and these t choices stress the executor differently):
///   dolev_strong  t = n/4       signature-chain fan-out (COW fast path)
///   eig           t = 2         O(n^t) nested-vector report traffic
///   phase_king    t = (n-1)/3   tiny payloads, many rounds (loop overhead)
inline Workload make_workload(const std::string& name, std::uint32_t n) {
  Workload w;
  w.name = name;
  if (name == "dolev_strong") {
    // t + 1 rounds; fault-free, so the sender's chain fans out to everyone
    // in round 1 and every process relays once in round 2.
    const std::uint32_t t = n / 4;
    w.params = SystemParams{n, t};
    w.factory = protocols::dolev_strong_broadcast(make_auth(n), /*sender=*/0);
    w.proposals.assign(n, Value::bit(0));
    w.proposals[0] = Value{"tx:9f8e7d6c5b4a39281706f5e4d3c2b1a0:amount=1337"};
  } else if (name == "eig") {
    // Fixed t = 2 keeps the O(n^t) report tree polynomial while still
    // exercising deep nested-vector payloads.
    const std::uint32_t t = 2;
    w.params = SystemParams{n, t};
    w.factory = protocols::eig_interactive_consistency();
    for (std::uint32_t p = 0; p < n; ++p) {
      w.proposals.emplace_back(static_cast<std::int64_t>(p));
    }
  } else {  // phase_king
    const std::uint32_t t = (n - 1) / 3;
    w.params = SystemParams{n, t};
    w.factory = protocols::phase_king_consensus();
    for (std::uint32_t p = 0; p < n; ++p) {
      w.proposals.push_back(Value::bit(static_cast<int>(p % 2)));
    }
  }
  return w;
}

/// Fault-free message complexity of a protocol with unanimous proposal.
inline std::uint64_t fault_free_messages(const SystemParams& params,
                                         const ProtocolFactory& protocol,
                                         const Value& v) {
  RunOptions opts;
  opts.record_trace = false;
  return run_all_correct(params, protocol, v, opts).messages_sent_by_correct;
}

/// Worst message complexity over an explicit adversary schedule (the paper
/// counts messages *sent*, so isolation cannot reduce the count of other
/// executions it reveals — this is a probe, not an exact max). The probe
/// itself lives in src/lowerbound/probe.h so benches and the test battery
/// share one definition; pass `lowerbound::default_probe_schedule(params)`
/// for the standard isolation schedule.
inline std::uint64_t worst_observed_messages(
    const SystemParams& params, const ProtocolFactory& protocol,
    const Value& v, const std::vector<Adversary>& schedule) {
  return lowerbound::worst_observed_messages(params, protocol, v, schedule);
}

}  // namespace ba::bench
