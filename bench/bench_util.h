#pragma once

// Shared helpers for the experiment benches. Each bench binary regenerates
// one experiment from DESIGN.md §4 (a figure, lemma or theorem of the
// paper), reporting the measured quantities as benchmark counters so the
// series can be read straight off the bench output.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "core/ba.h"

namespace ba::bench {

inline std::shared_ptr<crypto::Authenticator> make_auth(std::uint32_t n,
                                                        std::uint64_t seed =
                                                            0xba5eba11) {
  return std::make_shared<crypto::Authenticator>(seed, n);
}

/// Fault-free message complexity of a protocol with unanimous proposal.
inline std::uint64_t fault_free_messages(const SystemParams& params,
                                         const ProtocolFactory& protocol,
                                         const Value& v) {
  RunOptions opts;
  opts.record_trace = false;
  return run_all_correct(params, protocol, v, opts).messages_sent_by_correct;
}

/// Worst message complexity over a small schedule of isolation adversaries
/// (the paper counts messages *sent*, so isolation cannot reduce the count
/// of other executions it reveals — this is a probe, not an exact max).
inline std::uint64_t worst_observed_messages(const SystemParams& params,
                                             const ProtocolFactory& protocol,
                                             const Value& v) {
  RunOptions opts;
  opts.record_trace = false;
  std::uint64_t worst =
      run_all_correct(params, protocol, v, opts).messages_sent_by_correct;
  const std::uint32_t g = std::max<std::uint32_t>(1, params.t / 4);
  for (Round k : {1u, 2u, 3u}) {
    Adversary adv = isolate_group(
        ProcessSet::range(params.n - g, params.n), k);
    std::vector<Value> proposals(params.n, v);
    worst = std::max(worst, run_execution(params, protocol, proposals, adv,
                                          opts)
                                .messages_sent_by_correct);
  }
  return worst;
}

}  // namespace ba::bench
