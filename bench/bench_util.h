#pragma once

// Shared helpers for the experiment benches. Each bench binary regenerates
// one experiment from DESIGN.md §4 (a figure, lemma or theorem of the
// paper), reporting the measured quantities as benchmark counters so the
// series can be read straight off the bench output.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "core/ba.h"

namespace ba::bench {

inline std::shared_ptr<crypto::Authenticator> make_auth(std::uint32_t n,
                                                        std::uint64_t seed =
                                                            0xba5eba11) {
  return std::make_shared<crypto::Authenticator>(seed, n);
}

/// Fault-free message complexity of a protocol with unanimous proposal.
inline std::uint64_t fault_free_messages(const SystemParams& params,
                                         const ProtocolFactory& protocol,
                                         const Value& v) {
  RunOptions opts;
  opts.record_trace = false;
  return run_all_correct(params, protocol, v, opts).messages_sent_by_correct;
}

/// Worst message complexity over an explicit adversary schedule (the paper
/// counts messages *sent*, so isolation cannot reduce the count of other
/// executions it reveals — this is a probe, not an exact max). The probe
/// itself lives in src/lowerbound/probe.h so benches and the test battery
/// share one definition; pass `lowerbound::default_probe_schedule(params)`
/// for the standard isolation schedule.
inline std::uint64_t worst_observed_messages(
    const SystemParams& params, const ProtocolFactory& protocol,
    const Value& v, const std::vector<Adversary>& schedule) {
  return lowerbound::worst_observed_messages(params, protocol, v, schedule);
}

}  // namespace ba::bench
