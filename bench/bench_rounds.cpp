// E9 — Round complexity (Dolev-Strong bound [52], §6): rounds to decision
// as a function of the resilience t and of the ACTUAL number of failures f.
//
// Expected shape: Dolev-Strong and EIG always run t + 1 rounds regardless of
// f (they are worst-case protocols — the t+1 lower bound of [52] is about
// the worst case); phase king runs 3(t + 1); external validity pays
// (v + 1)(t + 1) where v is the number of burned views.

#include "bench_util.h"

namespace ba::bench {
namespace {

Round decision_rounds(const SystemParams& params,
                      const ProtocolFactory& protocol,
                      const Adversary& adv, const Value& v) {
  std::vector<Value> proposals(params.n, v);
  RunResult res = run_execution(params, protocol, proposals, adv);
  Round last = 0;
  for (ProcessId p = 0; p < params.n; ++p) {
    if (adv.faulty.contains(p)) continue;
    last = std::max(last, res.trace.procs[p].decision_round);
  }
  return last;
}

void RoundsDolevStrong(benchmark::State& state) {
  const auto t = static_cast<std::uint32_t>(state.range(0));
  const auto f = static_cast<std::uint32_t>(state.range(1));
  SystemParams params{t + 2, t};
  auto auth = make_auth(params.n);
  auto bb = protocols::dolev_strong_broadcast(auth, 0);
  Adversary adv;
  if (f > 0) {
    adv.faulty = ProcessSet::range(1, 1 + f);
    adv.byzantine = adv.faulty;
    adv.byzantine_factory = byz_silent();
  }
  Round rounds = 0;
  for (auto _ : state) {
    rounds = decision_rounds(params, bb, adv, Value{"v"});
  }
  state.counters["t"] = t;
  state.counters["f"] = f;
  state.counters["rounds"] = rounds;  // expected t + 1, independent of f
}

void RoundsPhaseKing(benchmark::State& state) {
  const auto t = static_cast<std::uint32_t>(state.range(0));
  SystemParams params{3 * t + 1, t};
  Round rounds = 0;
  for (auto _ : state) {
    rounds = decision_rounds(params, protocols::phase_king_consensus(),
                             Adversary::none(), Value::bit(0));
  }
  state.counters["t"] = t;
  state.counters["rounds"] = rounds;  // expected 3(t + 1)
}

void RoundsEig(benchmark::State& state) {
  const auto t = static_cast<std::uint32_t>(state.range(0));
  SystemParams params{3 * t + 1, t};
  Round rounds = 0;
  for (auto _ : state) {
    rounds = decision_rounds(params, protocols::eig_interactive_consistency(),
                             Adversary::none(), Value::bit(0));
  }
  state.counters["t"] = t;
  state.counters["rounds"] = rounds;  // expected t + 1
}

void RoundsExternalValidityWithBurnedViews(benchmark::State& state) {
  const auto burned = static_cast<std::uint32_t>(state.range(0));
  SystemParams params{8, 3};
  auto auth = make_auth(8);
  auto ev = protocols::external_validity_agreement(
      auth, [](const Value& v) { return v.is_str(); });
  Adversary adv;
  if (burned > 0) {
    adv.faulty = ProcessSet::range(0, burned);
    adv.byzantine = adv.faulty;
    adv.byzantine_factory = byz_silent();
  }
  Round rounds = 0;
  for (auto _ : state) {
    rounds = decision_rounds(params, ev, adv, Value{"tx"});
  }
  state.counters["burned_views"] = burned;
  state.counters["rounds"] = rounds;  // expected (burned + 1)(t + 1)
}

}  // namespace
}  // namespace ba::bench

BENCHMARK(ba::bench::RoundsDolevStrong)
    ->Args({2, 0})->Args({2, 1})->Args({2, 2})
    ->Args({4, 0})->Args({4, 2})->Args({4, 4})
    ->Args({8, 0})->Args({8, 4})->Args({8, 8})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::RoundsPhaseKing)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::RoundsEig)
    ->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::RoundsExternalValidityWithBurnedViews)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
