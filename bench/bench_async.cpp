// R-async — throughput of the asynchronous adversarial-scheduler substrate
// (src/async/): single Ben-Or / Bracha executions per scheduler strategy,
// and the schedule-exploration sampling loop that the termination campaigns
// and the explore CLI are built on. Counters report deliveries (the async
// cost unit — one scheduler pick plus one handler dispatch) rather than
// rounds, which are virtual in this model.

#include "bench_util.h"

#include <chrono>
#include <cstdint>
#include <string>

namespace ba::bench {
namespace {

std::vector<Value> split_proposals(std::uint32_t n) {
  std::vector<Value> proposals;
  proposals.reserve(n);
  for (std::uint32_t p = 0; p < n; ++p) {
    proposals.push_back(Value::bit(static_cast<int>(p % 2)));
  }
  return proposals;
}

/// One async execution per iteration; a fresh scheduler per run keeps the
/// work identical across iterations (schedulers are stateful).
void AsyncRun(benchmark::State& state, const std::string& protocol,
              const std::string& strategy) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const SystemParams params{n, (n - 1) / 3};
  const async::AsyncProtocolInfo* info = async::find_async_protocol(protocol);
  const async::AsyncProtocolFactory factory = info->make(/*coin_seed=*/1);
  const std::vector<Value> proposals = split_proposals(n);
  async::AsyncRunOptions opts;
  opts.record_trace = false;  // hot path proper, like bench_runtime

  std::uint64_t deliveries = 0;
  std::uint64_t iters = 0;
  std::uint64_t seed = 1;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    auto scheduler = async::make_scheduler(strategy, seed++, params.n);
    const async::AsyncRunResult res =
        async::run_async(params, factory, proposals,
                         async::AsyncAdversary::none(), *scheduler, opts);
    deliveries += res.deliveries;
    ++iters;
    benchmark::DoNotOptimize(res.run.decisions.data());
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  state.counters["deliveries_per_run"] =
      static_cast<double>(deliveries) / static_cast<double>(iters);
  state.counters["deliveries_per_sec"] =
      secs > 0 ? static_cast<double>(deliveries) / secs : 0;
  state.counters["peak_rss_kb"] = peak_rss_kb();
}

void BenOrRandom(benchmark::State& state) {
  AsyncRun(state, "ben-or", "random");
}
void BenOrDelayDecider(benchmark::State& state) {
  AsyncRun(state, "ben-or", "delay-decider");
}
void BrachaFifo(benchmark::State& state) {
  AsyncRun(state, "bracha", "fifo");
}
void BrachaRrStarve(benchmark::State& state) {
  AsyncRun(state, "bracha", "rr-starve");
}

/// One sampling campaign per iteration — the explore CLI's inner loop,
/// including the per-schedule safety check and the digest fold.
void ExploreSampling(benchmark::State& state) {
  const auto samples = static_cast<std::uint64_t>(state.range(0));
  async::ExploreTask task;
  task.protocol = "ben-or";
  task.params = SystemParams{4, 1};
  task.proposals = {0, 1, 0, 1};
  async::ExploreOptions options;
  options.samples = samples;
  options.jobs = 1;

  std::uint64_t deliveries = 0;
  std::uint64_t schedules = 0;
  std::uint64_t iters = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    options.seed = iters + 1;  // fresh schedules every iteration
    const async::ExploreReport report = async::explore(task, options);
    deliveries += report.deliveries;
    schedules += report.schedules;
    ++iters;
    benchmark::DoNotOptimize(report.digest);
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  state.counters["schedules_per_sec"] =
      secs > 0 ? static_cast<double>(schedules) / secs : 0;
  state.counters["deliveries_per_sec"] =
      secs > 0 ? static_cast<double>(deliveries) / secs : 0;
  state.counters["peak_rss_kb"] = peak_rss_kb();
}

}  // namespace
}  // namespace ba::bench

BENCHMARK(ba::bench::BenOrRandom)
    ->Arg(4)->Arg(7)->Arg(10)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::BenOrDelayDecider)
    ->Arg(4)->Arg(7)->Arg(10)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::BrachaFifo)
    ->Arg(4)->Arg(7)->Arg(10)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::BrachaRrStarve)
    ->Arg(4)->Arg(7)->Arg(10)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::ExploreSampling)
    ->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
