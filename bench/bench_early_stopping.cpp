// E11 — "Early-deciding consensus is expensive" [50] (related work §6):
// with f actual crashes, the early-deciding FloodSet decides by round f + 2
// — but its MESSAGE complexity does not drop, because flooding must continue
// to round t + 1 for the laggards' benefit.
//
// Expected shape: decision_round grows with f (capped at t + 1) while
// msgs stays flat and equal to the non-early baseline; the plain FloodSet
// always decides at exactly t + 1.

#include "bench_util.h"

namespace ba::bench {
namespace {

void run_case(benchmark::State& state, const ProtocolFactory& protocol,
              std::uint32_t t, std::uint32_t f) {
  const SystemParams params{2 * t, t};
  std::vector<std::pair<ProcessId, Round>> crashes;
  for (std::uint32_t i = 0; i < f; ++i) {
    crashes.emplace_back(static_cast<ProcessId>(params.n - 1 - i),
                         static_cast<Round>(i + 1));
  }
  Adversary adv = crash_schedule(crashes);

  Round last_decision = 0;
  std::uint64_t msgs = 0;
  for (auto _ : state) {
    std::vector<Value> proposals(params.n, Value::bit(0));
    RunResult res = run_execution(params, protocol, proposals, adv);
    msgs = res.messages_sent_by_correct;
    last_decision = 0;
    for (ProcessId p = 0; p < params.n; ++p) {
      if (adv.faulty.contains(p)) continue;
      last_decision =
          std::max(last_decision, res.trace.procs[p].decision_round);
    }
  }
  state.counters["t"] = t;
  state.counters["f"] = f;
  state.counters["decision_round"] = last_decision;
  state.counters["msgs"] = static_cast<double>(msgs);
}

void EarlyDecidingFloodSet(benchmark::State& state) {
  run_case(state, protocols::early_deciding_floodset(),
           static_cast<std::uint32_t>(state.range(0)),
           static_cast<std::uint32_t>(state.range(1)));
}

void PlainFloodSet(benchmark::State& state) {
  run_case(state, protocols::floodset_consensus(),
           static_cast<std::uint32_t>(state.range(0)),
           static_cast<std::uint32_t>(state.range(1)));
}

}  // namespace
}  // namespace ba::bench

BENCHMARK(ba::bench::EarlyDecidingFloodSet)
    ->Args({6, 0})->Args({6, 1})->Args({6, 2})->Args({6, 4})->Args({6, 6})
    ->Args({10, 0})->Args({10, 5})->Args({10, 10})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::PlainFloodSet)
    ->Args({6, 0})->Args({6, 3})->Args({6, 6})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
