// E2 — Figure 2 / Lemma 5: the merged execution E^{B(R+1), C(R)}.
//
// For a sub-quadratic candidate (the gossip ring), this reconstructs the
// five rows of Figure 2 around the critical round R:
//   row1: decision of A in E^B(R+1)
//   row2: decision of B's majority inside the merged execution
//   row3: decision of A inside the merged execution
//   row4: decision of C's majority inside the merged execution
//   row5: decision of A in E^C(R)
// Expected shape: row1 != row5, row2 == row1, row4 == row5, so row3 must
// clash with row2 or row4 — the Lemma 2 contradiction. A correct protocol
// (Dolev-Strong weak consensus) shows row1 == row5 instead: no contradiction
// materializes.

#include "bench_util.h"

namespace ba::bench {
namespace {

int bit_of(const std::optional<Value>& v) {
  return v ? v->try_bit().value_or(-1) : -1;
}

/// Majority decision bit of a group inside a trace (-1 if none).
int group_majority(const ExecutionTrace& e, const ProcessSet& g) {
  int count[2] = {0, 0};
  for (ProcessId p : g) {
    int b = bit_of(e.procs[p].decision);
    if (b >= 0) ++count[b];
  }
  if (2 * count[0] > static_cast<int>(g.size())) return 0;
  if (2 * count[1] > static_cast<int>(g.size())) return 1;
  return -1;
}

void run_fig2(benchmark::State& state, const ProtocolFactory& protocol,
              const SystemParams& params) {
  const std::uint32_t gsz = std::max(1u, params.t / 4);
  const ProcessSet b = ProcessSet::range(params.n - 2 * gsz, params.n - gsz);
  const ProcessSet c = ProcessSet::range(params.n - gsz, params.n);

  // Locate the critical round by the same scan the attack engine performs.
  lowerbound::AttackReport probe =
      lowerbound::attack_weak_consensus(params, protocol);
  const Round r = probe.critical_round.value_or(1);
  const int family = probe.family_bit.value_or(0);

  calculus::IsolatedExecution eb, ec;
  ExecutionTrace merged;
  for (auto _ : state) {
    std::vector<Value> proposals(params.n, Value::bit(family));
    eb = {run_execution(params, protocol, proposals,
                        isolate_group(b, r + 1))
              .trace,
          b, r + 1};
    ec = {run_execution(params, protocol, proposals, isolate_group(c, r))
              .trace,
          c, r};
    merged = calculus::merge(params, protocol, eb, ec);
  }

  const ProcessSet a_grp = b.set_union(c).complement(params.n);
  state.counters["R"] = r;
  state.counters["row1_A_in_EB"] = bit_of(
      eb.trace.procs[*a_grp.begin()].decision);
  state.counters["row2_B_in_merge"] = group_majority(merged, b);
  state.counters["row3_A_in_merge"] = bit_of(
      merged.procs[*a_grp.begin()].decision);
  state.counters["row4_C_in_merge"] = group_majority(merged, c);
  state.counters["row5_A_in_EC"] = bit_of(
      ec.trace.procs[*a_grp.begin()].decision);
  state.counters["merged_valid"] =
      merged.validate() == std::nullopt ? 1 : 0;
}

void Fig2MergeBrokenGossip(benchmark::State& state) {
  run_fig2(state, protocols::wc_candidate_gossip_ring(2, 3),
           SystemParams{12, 8});
}

void Fig2MergeCorrectDolevStrong(benchmark::State& state) {
  SystemParams params{12, 8};
  auto auth = make_auth(params.n);
  run_fig2(state, protocols::weak_consensus_auth(auth), params);
}

}  // namespace
}  // namespace ba::bench

BENCHMARK(ba::bench::Fig2MergeBrokenGossip)->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::Fig2MergeCorrectDolevStrong)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
