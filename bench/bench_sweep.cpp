// E-sweep — parallel scaling of the Theorem 2 attack sweep: the standard
// candidate set over the standard grid, fanned across the deterministic
// experiment pool at jobs in {1, 2, 4, 8}.
//
// Expected shape: points_per_sec scales with jobs up to the machine's core
// count (the grid points are independent and the pool adds no barriers
// beyond ordered collection), while rows_match = 1 certifies the parallel
// result is bit-identical to the serial reference at every width. The
// jobs = 8 run also drops BENCH_sweep.json next to the binary — the repo's
// machine-readable perf-trajectory artifact (also produced by
// `ba_cli sweep --json`).

#include "bench_util.h"

#include <fstream>

namespace ba::bench {
namespace {

void SweepScaling(benchmark::State& state) {
  const auto jobs = static_cast<unsigned>(state.range(0));
  const auto entries = lowerbound::standard_sweep_entries();
  const auto grid = lowerbound::standard_sweep_grid();
  const lowerbound::SweepResult serial =
      lowerbound::run_attack_sweep(entries, grid);

  lowerbound::SweepOptions options;
  options.jobs = jobs;
  lowerbound::SweepResult result;
  for (auto _ : state) {
    result = lowerbound::run_attack_sweep(entries, grid, options);
  }

  state.counters["jobs"] = jobs;
  state.counters["points"] = static_cast<double>(result.rows.size());
  state.counters["wall_s"] =
      static_cast<double>(result.wall_micros) / 1e6;
  state.counters["points_per_sec"] =
      result.wall_micros == 0
          ? 0
          : static_cast<double>(result.rows.size()) * 1e6 /
                static_cast<double>(result.wall_micros);
  state.counters["rows_match"] = result.rows == serial.rows ? 1 : 0;
  state.counters["consistent"] = result.theorem2_consistent() ? 1 : 0;

  if (jobs == 8) {
    std::ofstream out("BENCH_sweep.json");
    lowerbound::write_bench_json(out, result);
  }
}

}  // namespace
}  // namespace ba::bench

BENCHMARK(ba::bench::SweepScaling)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
