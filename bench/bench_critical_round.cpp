// E3 — Table 1 executions + Lemma 4: the decision of group A in E_a^B(k) as
// a function of the isolation round k, locating the critical round R where
// the decision flips from the "default" bit to the proposal bit.
//
// Expected shape: for a protocol that decides a default when it detects
// faults early (e.g. the gossip candidate, whose members decide 1 when a
// predecessor goes quiet), the series starts at the default bit for k = 1
// and switches to the unanimous proposal once k exceeds the protocol's
// communication horizon. Lemma 4 says the switch happens between two
// *adjacent* rounds R and R + 1.

#include "bench_util.h"

namespace ba::bench {
namespace {

void run_sweep(benchmark::State& state, const ProtocolFactory& protocol,
               const SystemParams& params, int family_bit) {
  const std::uint32_t gsz = std::max(1u, params.t / 4);
  const ProcessSet b = ProcessSet::range(params.n - 2 * gsz, params.n - gsz);

  std::vector<int> decisions;
  for (auto _ : state) {
    decisions.clear();
    // R_max: one past the last decision round of the fault-free execution.
    RunResult base =
        run_all_correct(params, protocol, Value::bit(family_bit));
    Round r_max = 1;
    for (const auto& pt : base.trace.procs) {
      r_max = std::max(r_max, pt.decision_round + 1);
    }
    for (Round k = 1; k <= r_max; ++k) {
      std::vector<Value> proposals(params.n, Value::bit(family_bit));
      RunResult res = run_execution(params, protocol, proposals,
                                    isolate_group(b, k));
      // Decision of A = unanimous decision of the correct processes.
      auto d = res.unanimous_correct_decision();
      decisions.push_back(d ? d->try_bit().value_or(-1) : -1);
    }
  }

  // Report the whole series as counters dec_k1, dec_k2, ... plus the
  // located critical round.
  Round critical = 0;
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    state.counters["dec_k" + std::to_string(i + 1)] = decisions[i];
    if (critical == 0 && i > 0 && decisions[i] != decisions[i - 1]) {
      critical = static_cast<Round>(i);  // flips between k = i and k = i+1
    }
  }
  state.counters["critical_R"] = critical;
  state.counters["R_max"] = static_cast<double>(decisions.size());
}

void CriticalRoundGossip(benchmark::State& state) {
  // Gossip forwards the accumulated AND, so an early-isolated group poisons
  // its successors: for small k the correct processes SPLIT (dec = -1 marks
  // "no unanimous decision" — an Agreement violation visible already in
  // E_0^B(k) itself), and only once k exceeds the 3-round horizon does the
  // series settle at the proposal bit 0. The flip from -1 to 0 is this
  // protocol's critical round.
  run_sweep(state, protocols::wc_candidate_gossip_ring(2, 3),
            SystemParams{12, 8}, 0);
}

void CriticalRoundLeaderBeacon(benchmark::State& state) {
  run_sweep(state, protocols::wc_candidate_leader_beacon(),
            SystemParams{12, 8}, 0);
}

void CriticalRoundDolevStrongWeak(benchmark::State& state) {
  SystemParams params{12, 8};
  auto auth = make_auth(params.n);
  run_sweep(state, protocols::weak_consensus_auth(auth), params, 0);
}

void CriticalRoundPhaseKing(benchmark::State& state) {
  SystemParams params{25, 8};
  run_sweep(state, protocols::weak_consensus_unauth(), params, 0);
}

}  // namespace
}  // namespace ba::bench

BENCHMARK(ba::bench::CriticalRoundGossip)->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::CriticalRoundLeaderBeacon)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::CriticalRoundDolevStrongWeak)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::CriticalRoundPhaseKing)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
