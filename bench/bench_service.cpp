// E22 — campaign service throughput: a 10,000-spec campaign (phase-king +
// floodset at n=4 under fault-free and crash:1 plans) sharded across real
// forked ba_cli worker processes.
//
// Expected shape: rows_per_sec is dominated by per-task protocol execution
// (the coordinator's fork/lease/merge overhead amortizes to noise at this
// campaign size), so it should scale with worker count up to the machine's
// core count. The workers = 2 run drops BENCH_service.json next to the
// binary — the perf-trajectory artifact gated by
// tools/check_bench_regression.py against the repo-root baseline (also
// produced by `ba_cli serve --bench`).

#include "bench_util.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "service/campaign.h"
#include "service/runner.h"

namespace ba::bench {
namespace {

service::CampaignSpec bench_spec() {
  service::CampaignSpec spec;
  spec.name = "bench-service";
  spec.master_seed = 424242;
  spec.protocols = {"phase-king", "floodset"};
  spec.grid = {{4, 1}};
  spec.backends = {"lockstep"};
  spec.faults = {"fault-free", "crash:1"};
  spec.seeds = 2500;
  spec.validate();
  return spec;  // 2 * 1 * 1 * 2 * 2500 = 10,000 tasks
}

void ServiceCampaign(benchmark::State& state) {
  const auto workers = static_cast<std::uint32_t>(state.range(0));
  const service::CampaignSpec spec = bench_spec();
  const std::filesystem::path state_dir =
      std::filesystem::temp_directory_path() /
      ("ba_bench_service_" + std::to_string(workers));

  service::ServeSummary summary;
  for (auto _ : state) {
    // A fresh state dir per iteration: every task really runs (no cache
    // hits), so rows_per_sec measures execution, not resume bookkeeping.
    std::filesystem::remove_all(state_dir);
    service::ServeOptions options;
    options.state_dir = state_dir.string();
    options.workers = workers;
    options.worker_exe = BA_CLI_EXE;
    options.quiet = true;
    summary = service::serve_campaign(spec, options);
  }
  std::filesystem::remove_all(state_dir);

  const double rows_per_sec =
      summary.wall_micros == 0
          ? 0
          : static_cast<double>(summary.tasks_run) * 1e6 /
                static_cast<double>(summary.wall_micros);
  state.counters["specs"] = static_cast<double>(summary.tasks_total);
  state.counters["workers"] = workers;
  state.counters["respawns"] = summary.respawns;
  state.counters["wall_s"] =
      static_cast<double>(summary.wall_micros) / 1e6;
  state.counters["rows_per_sec"] = rows_per_sec;

  if (workers == 2) {
    std::ofstream out("BENCH_service.json");
    out << service::bench_service_json(spec, summary);
  }
}

}  // namespace
}  // namespace ba::bench

BENCHMARK(ba::bench::ServiceCampaign)
    ->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
