// E10 — Ablation: the isolated-group size in the Theorem 2 attack.
//
// The paper fixes |B| = |C| = t/4 (it makes the pigeonhole in Lemma 2 work
// out to t^2/32). This ablation varies the group size g and asks whether the
// engine still lands a verified violation against the sub-quadratic
// candidates, and how the implied message threshold g * (t/2) * 2 moves.
//
// Expected shape: the attack succeeds across a wide range of g (the broken
// candidates are far below every threshold); tiny g still works because the
// candidates' decisions are already wrong for a single isolated process.

#include "bench_util.h"

namespace ba::bench {
namespace {

void run_ablation(benchmark::State& state, const ProtocolFactory& protocol,
                  const char* /*label*/) {
  const SystemParams params{24, 16};
  const auto g = static_cast<std::uint32_t>(state.range(0));

  lowerbound::AttackOptions opts;
  opts.group_b = ProcessSet::range(params.n - 2 * g, params.n - g);
  opts.group_c = ProcessSet::range(params.n - g, params.n);

  lowerbound::AttackReport report;
  for (auto _ : state) {
    report = lowerbound::attack_weak_consensus(params, protocol, opts);
  }
  int cert_ok = -1;
  if (report.certificate) {
    cert_ok =
        lowerbound::verify_certificate(*report.certificate, protocol).ok ? 1
                                                                         : 0;
  }
  state.counters["group_size"] = g;
  state.counters["violation"] = report.violation_found ? 1 : 0;
  state.counters["cert_ok"] = cert_ok;
  state.counters["msgs"] = static_cast<double>(report.max_message_complexity);
  // The Lemma 2 pigeonhole threshold for this group size: more than half of
  // the group must have < t/2 omitted messages, i.e. the adversary's lever
  // scales as g/2 * t/2.
  state.counters["pigeonhole_threshold"] =
      static_cast<double>(g) / 2.0 * (params.t / 2.0);
}

void AblationGossip(benchmark::State& state) {
  run_ablation(state, protocols::wc_candidate_gossip_ring(2, 3), "gossip");
}

void AblationLeaderBeacon(benchmark::State& state) {
  run_ablation(state, protocols::wc_candidate_leader_beacon(), "beacon");
}

}  // namespace
}  // namespace ba::bench

// t = 16: group sizes 1, 2, 4 (= t/4), 8 (= t/2).
BENCHMARK(ba::bench::AblationGossip)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ba::bench::AblationLeaderBeacon)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
